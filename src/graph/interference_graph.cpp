#include "graph/interference_graph.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"
#include "graph/components.hpp"

namespace specmatch::graph {

InterferenceGraph::~InterferenceGraph() = default;
InterferenceGraph::InterferenceGraph(InterferenceGraph&& other) noexcept =
    default;
InterferenceGraph& InterferenceGraph::operator=(
    InterferenceGraph&& other) noexcept = default;

InterferenceGraph::InterferenceGraph(const InterferenceGraph& other)
    : rep_(other.rep_),
      finalized_(other.finalized_),
      narrow_(other.narrow_),
      num_vertices_(other.num_vertices_),
      num_edges_(other.num_edges_),
      max_degree_(other.max_degree_),
      degrees_(other.degrees_),
      adjacency_(other.adjacency_),
      rows_(other.rows_),
      offsets_(other.offsets_),
      flat16_(other.flat16_),
      flat32_(other.flat32_),
      ext_offsets_(other.ext_offsets_),
      ext_degrees_(other.ext_degrees_),
      ext_ids16_(other.ext_ids16_),
      ext_ids32_(other.ext_ids32_) {
  // components_ stays null: the copy rebuilds its own index on first use.
  // A copy must not alias the source's snapshot backing, whose lifetime it
  // does not control — deep-copy any borrowed arrays into owned storage.
  materialize();
}

InterferenceGraph& InterferenceGraph::operator=(
    const InterferenceGraph& other) {
  if (this == &other) return *this;
  rep_ = other.rep_;
  finalized_ = other.finalized_;
  narrow_ = other.narrow_;
  num_vertices_ = other.num_vertices_;
  num_edges_ = other.num_edges_;
  max_degree_ = other.max_degree_;
  degrees_ = other.degrees_;
  adjacency_ = other.adjacency_;
  rows_ = other.rows_;
  offsets_ = other.offsets_;
  flat16_ = other.flat16_;
  flat32_ = other.flat32_;
  ext_offsets_ = other.ext_offsets_;
  ext_degrees_ = other.ext_degrees_;
  ext_ids16_ = other.ext_ids16_;
  ext_ids32_ = other.ext_ids32_;
  components_.reset();
  materialize();  // same no-alias rule as the copy constructor
  return *this;
}

void InterferenceGraph::materialize() {
  if (ext_offsets_ == nullptr) return;
  offsets_.assign(ext_offsets_, ext_offsets_ + num_vertices_ + 1);
  degrees_.assign(ext_degrees_, ext_degrees_ + num_vertices_);
  if (narrow_ && ext_ids16_ != nullptr)
    flat16_.assign(ext_ids16_, ext_ids16_ + 2 * num_edges_);
  else if (!narrow_ && ext_ids32_ != nullptr)
    flat32_.assign(ext_ids32_, ext_ids32_ + 2 * num_edges_);
  ext_offsets_ = nullptr;
  ext_degrees_ = nullptr;
  ext_ids16_ = nullptr;
  ext_ids32_ = nullptr;
}

CsrView InterferenceGraph::csr_export() const {
  SPECMATCH_CHECK_MSG(rep_ == GraphRep::kCsr && finalized_,
                      "csr_export requires a finalized CSR graph (convert "
                      "dense graphs through with_representation first)");
  CsrView view;
  view.num_vertices = num_vertices_;
  view.num_edges = num_edges_;
  view.max_degree = max_degree_;
  view.narrow = narrow_;
  view.offsets = offsets_data();
  view.degrees = degrees_data();
  if (narrow_)
    view.ids16 = flat16_data();
  else
    view.ids32 = flat32_data();
  return view;
}

InterferenceGraph InterferenceGraph::from_csr_view(const CsrView& view) {
  SPECMATCH_CHECK_MSG(view.offsets != nullptr && view.degrees != nullptr,
                      "CSR view missing offsets/degrees arrays");
  SPECMATCH_CHECK_MSG(
      view.offsets[view.num_vertices] == 2 * view.num_edges,
      "CSR view offsets end " << view.offsets[view.num_vertices]
                              << " != 2*num_edges " << 2 * view.num_edges);
  if (view.num_edges > 0)
    SPECMATCH_CHECK_MSG(
        view.narrow ? view.ids16 != nullptr : view.ids32 != nullptr,
        "CSR view missing neighbour-id array");
  InterferenceGraph g;
  g.rep_ = GraphRep::kCsr;
  g.finalized_ = true;
  g.narrow_ = view.narrow;
  g.num_vertices_ = view.num_vertices;
  g.num_edges_ = view.num_edges;
  g.max_degree_ = view.max_degree;
  g.ext_offsets_ = view.offsets;
  g.ext_degrees_ = view.degrees;
  g.ext_ids16_ = view.ids16;
  g.ext_ids32_ = view.ids32;
  return g;
}

const ComponentIndex& InterferenceGraph::components() const {
  if (components_ == nullptr)
    components_ = std::make_unique<ComponentIndex>(*this);
  return *components_;
}

std::size_t InterferenceGraph::component_index_bytes() const {
  return components_ == nullptr ? 0 : components_->bytes();
}

std::size_t InterferenceGraph::dense_max() {
  static const std::size_t value = [] {
    constexpr std::size_t kDefault = 2048;
    const char* env = std::getenv("SPECMATCH_GRAPH_DENSE_MAX");
    if (env == nullptr || env[0] == '\0') return kDefault;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) return kDefault;
    return static_cast<std::size_t>(parsed);
  }();
  return value;
}

InterferenceGraph::InterferenceGraph(std::size_t num_vertices)
    : InterferenceGraph(num_vertices, num_vertices <= dense_max()
                                          ? GraphRep::kDense
                                          : GraphRep::kCsr) {}

InterferenceGraph::InterferenceGraph(std::size_t num_vertices, GraphRep rep)
    : rep_(rep),
      narrow_(num_vertices <= (std::size_t{1} << 16)),
      num_vertices_(num_vertices),
      degrees_(num_vertices, 0) {
  if (rep_ == GraphRep::kDense)
    adjacency_.assign(num_vertices, DynamicBitset(num_vertices));
  else
    rows_.resize(num_vertices);
}

InterferenceGraph InterferenceGraph::from_edges(
    std::size_t num_vertices,
    std::span<const std::pair<BuyerId, BuyerId>> edge_list) {
  return from_edges(num_vertices, edge_list,
                    num_vertices <= dense_max() ? GraphRep::kDense
                                                : GraphRep::kCsr);
}

InterferenceGraph InterferenceGraph::from_edges(
    std::size_t num_vertices,
    std::span<const std::pair<BuyerId, BuyerId>> edge_list, GraphRep rep) {
  InterferenceGraph g(num_vertices, rep);
  if (rep == GraphRep::kDense) {
    for (const auto& [a, b] : edge_list) g.add_edge(a, b);
    return g;
  }

  // Straight-to-finalized CSR: count, prefix-sum, fill, sort, dedup. The
  // only transients beyond the final arrays are the caller's edge list and
  // one cursor vector — no per-vertex row vectors, which matters when the
  // generator builds M large graphs back to back.
  for (const auto& [a, b] : edge_list) {
    g.check_vertex(a);
    g.check_vertex(b);
    SPECMATCH_CHECK_MSG(a != b, "self-loop at vertex " << a);
    ++g.degrees_[static_cast<std::size_t>(a)];  // raw counts incl. duplicates
    ++g.degrees_[static_cast<std::size_t>(b)];
  }
  g.offsets_.assign(num_vertices + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < num_vertices; ++v) {
    SPECMATCH_CHECK_MSG(
        total + g.degrees_[v] <= std::numeric_limits<std::uint32_t>::max(),
        "CSR offsets overflow uint32");
    g.offsets_[v] = static_cast<std::uint32_t>(total);
    total += g.degrees_[v];
  }
  g.offsets_[num_vertices] = static_cast<std::uint32_t>(total);

  std::vector<std::uint32_t> cursor(g.offsets_.begin(),
                                    g.offsets_.end() - (num_vertices ? 1 : 0));
  const auto fill = [&](auto& flat) {
    flat.resize(total);
    using Id = typename std::remove_reference_t<decltype(flat)>::value_type;
    for (const auto& [a, b] : edge_list) {
      const auto ua = static_cast<std::size_t>(a);
      const auto ub = static_cast<std::size_t>(b);
      flat[cursor[ua]++] = static_cast<Id>(ub);
      flat[cursor[ub]++] = static_cast<Id>(ua);
    }
    // Sort each row and compact duplicates in place (the write cursor never
    // overtakes the read cursor).
    std::size_t write = 0;
    for (std::size_t v = 0; v < num_vertices; ++v) {
      const std::size_t begin = g.offsets_[v];
      const std::size_t end = cursor[v];
      std::sort(flat.begin() + static_cast<std::ptrdiff_t>(begin),
                flat.begin() + static_cast<std::ptrdiff_t>(end));
      g.offsets_[v] = static_cast<std::uint32_t>(write);
      for (std::size_t k = begin; k < end; ++k)
        if (k == begin || flat[k] != flat[k - 1]) flat[write++] = flat[k];
      g.degrees_[v] = static_cast<std::uint32_t>(write - g.offsets_[v]);
      g.max_degree_ = std::max<std::size_t>(g.max_degree_, g.degrees_[v]);
    }
    g.offsets_[num_vertices] = static_cast<std::uint32_t>(write);
    flat.resize(write);
    flat.shrink_to_fit();
    g.num_edges_ = write / 2;
  };
  if (g.narrow_)
    fill(g.flat16_);
  else
    fill(g.flat32_);

  std::vector<std::vector<std::uint32_t>>().swap(g.rows_);  // build rows unused
  g.finalized_ = true;
  return g;
}

void InterferenceGraph::finalize() {
  if (rep_ == GraphRep::kDense || finalized_) return;
  const std::size_t total = 2 * num_edges_;
  SPECMATCH_CHECK_MSG(total <= std::numeric_limits<std::uint32_t>::max(),
                      "CSR offsets overflow uint32");
  offsets_.assign(num_vertices_ + 1, 0);
  std::size_t running = 0;
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    offsets_[v] = static_cast<std::uint32_t>(running);
    running += rows_[v].size();
  }
  offsets_[num_vertices_] = static_cast<std::uint32_t>(running);
  const auto fill = [&](auto& flat) {
    flat.resize(total);
    using Id = typename std::remove_reference_t<decltype(flat)>::value_type;
    std::size_t write = 0;
    for (std::size_t v = 0; v < num_vertices_; ++v)
      for (std::uint32_t u : rows_[v]) flat[write++] = static_cast<Id>(u);
  };
  if (narrow_)
    fill(flat16_);
  else
    fill(flat32_);
  std::vector<std::vector<std::uint32_t>>().swap(rows_);
  finalized_ = true;
}

void InterferenceGraph::definalize() {
  // Mutation needs owned arrays (add_edge bumps degrees_ in place), so a
  // view-backed graph copies its borrowed sections down first.
  materialize();
  rows_.resize(num_vertices_);
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    auto& row = rows_[v];
    row.clear();
    row.reserve(degrees_[v]);
    const std::size_t begin = offsets_[v];
    const std::size_t end = offsets_[v + 1];
    if (narrow_)
      row.assign(flat16_.begin() + static_cast<std::ptrdiff_t>(begin),
                 flat16_.begin() + static_cast<std::ptrdiff_t>(end));
    else
      row.assign(flat32_.begin() + static_cast<std::ptrdiff_t>(begin),
                 flat32_.begin() + static_cast<std::ptrdiff_t>(end));
  }
  std::vector<std::uint32_t>().swap(offsets_);
  std::vector<std::uint16_t>().swap(flat16_);
  std::vector<std::uint32_t>().swap(flat32_);
  finalized_ = false;
}

void InterferenceGraph::add_edge(BuyerId a, BuyerId b) {
  check_vertex(a);
  check_vertex(b);
  SPECMATCH_CHECK_MSG(a != b, "self-loop at vertex " << a);
  components_.reset();  // edge mutations invalidate the component index
  const auto ua = static_cast<std::size_t>(a);
  const auto ub = static_cast<std::size_t>(b);
  if (rep_ == GraphRep::kDense) {
    if (adjacency_[ua].test(ub)) return;  // already present
    adjacency_[ua].set(ub);
    adjacency_[ub].set(ua);
  } else {
    if (finalized_) definalize();
    auto& row_a = rows_[ua];
    const auto wa = static_cast<std::uint32_t>(ub);
    const auto it_a = std::lower_bound(row_a.begin(), row_a.end(), wa);
    if (it_a != row_a.end() && *it_a == wa) return;  // already present
    row_a.insert(it_a, wa);
    auto& row_b = rows_[ub];
    const auto wb = static_cast<std::uint32_t>(ua);
    row_b.insert(std::lower_bound(row_b.begin(), row_b.end(), wb), wb);
  }
  ++num_edges_;
  max_degree_ = std::max<std::size_t>(
      max_degree_, std::max(++degrees_[ua], ++degrees_[ub]));
}

bool InterferenceGraph::has_edge(BuyerId a, BuyerId b) const {
  check_vertex(a);
  check_vertex(b);
  const auto ua = static_cast<std::size_t>(a);
  const auto ub = static_cast<std::size_t>(b);
  if (rep_ == GraphRep::kDense) return adjacency_[ua].test(ub);
  if (!finalized_) {
    const auto& row = rows_[ua];
    return std::binary_search(row.begin(), row.end(),
                              static_cast<std::uint32_t>(ub));
  }
  const std::uint32_t* offs = offsets_data();
  const std::size_t begin = offs[ua];
  const std::size_t end = offs[ua + 1];
  if (narrow_) {
    const std::uint16_t* ids = flat16_data();
    return std::binary_search(ids + begin, ids + end,
                              static_cast<std::uint16_t>(ub));
  }
  const std::uint32_t* ids = flat32_data();
  return std::binary_search(ids + begin, ids + end,
                            static_cast<std::uint32_t>(ub));
}

const DynamicBitset& InterferenceGraph::neighbors(BuyerId v) const {
  check_vertex(v);
  SPECMATCH_CHECK_MSG(rep_ == GraphRep::kDense,
                      "neighbors() hands out a dense adjacency row; CSR "
                      "graphs use the degree-proportional primitives");
  return adjacency_[static_cast<std::size_t>(v)];
}

bool InterferenceGraph::is_independent(const DynamicBitset& members) const {
  SPECMATCH_CHECK(members.size() == num_vertices_);
  bool independent = true;
  if (rep_ == GraphRep::kDense) {
    members.for_each_set([&](std::size_t v) {
      if (independent && adjacency_[v].intersects(members)) independent = false;
    });
    return independent;
  }
  // Each edge is examined from one endpoint only (rows are ascending, so the
  // u > v half covers every edge once).
  members.for_each_set([&](std::size_t v) {
    if (!independent) return;
    visit_row(static_cast<BuyerId>(v), [&](std::size_t u) {
      if (u > v && members.test(u)) {
        independent = false;
        return false;
      }
      return true;
    });
  });
  return independent;
}

std::vector<std::pair<BuyerId, BuyerId>> InterferenceGraph::edges() const {
  std::vector<std::pair<BuyerId, BuyerId>> out;
  out.reserve(num_edges_);
  if (rep_ == GraphRep::kDense) {
    for (std::size_t a = 0; a < num_vertices_; ++a) {
      adjacency_[a].for_each_set([&](std::size_t b) {
        if (a < b)
          out.emplace_back(static_cast<BuyerId>(a), static_cast<BuyerId>(b));
      });
    }
    return out;
  }
  for (std::size_t a = 0; a < num_vertices_; ++a) {
    visit_row(static_cast<BuyerId>(a), [&](std::size_t b) {
      if (a < b)
        out.emplace_back(static_cast<BuyerId>(a), static_cast<BuyerId>(b));
      return true;
    });
  }
  return out;
}

double InterferenceGraph::average_degree() const {
  if (num_vertices_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_vertices_);
}

std::size_t InterferenceGraph::adjacency_bytes() const {
  std::size_t bytes = degrees_.size() * sizeof(std::uint32_t);
  if (rep_ == GraphRep::kDense) {
    const std::size_t words_per_row = (num_vertices_ + 63) / 64;
    return bytes + num_vertices_ * words_per_row * sizeof(std::uint64_t);
  }
  if (finalized_) {
    // Computed from counts so owned and view-backed graphs report the same
    // footprint (mapped pages occupy RSS once touched, just like owned
    // arrays).
    return num_vertices_ * sizeof(std::uint32_t) +
           (num_vertices_ + 1) * sizeof(std::uint32_t) +
           2 * num_edges_ *
               (narrow_ ? sizeof(std::uint16_t) : sizeof(std::uint32_t));
  }
  {
    for (const auto& row : rows_)
      bytes += row.capacity() * sizeof(std::uint32_t);
    bytes += rows_.capacity() * sizeof(std::vector<std::uint32_t>);
  }
  return bytes;
}

bool InterferenceGraph::operator==(const InterferenceGraph& other) const {
  if (num_vertices_ != other.num_vertices_ || num_edges_ != other.num_edges_)
    return false;
  for (std::size_t v = 0; v < num_vertices_; ++v)
    if (degree(static_cast<BuyerId>(v)) !=
        other.degree(static_cast<BuyerId>(v)))
      return false;
  if (rep_ == GraphRep::kDense && other.rep_ == GraphRep::kDense)
    return adjacency_ == other.adjacency_;
  return edges() == other.edges();
}

InterferenceGraph with_representation(const InterferenceGraph& graph,
                                      GraphRep rep) {
  const auto edge_list = graph.edges();
  return InterferenceGraph::from_edges(graph.num_vertices(), edge_list, rep);
}

}  // namespace specmatch::graph
