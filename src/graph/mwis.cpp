#include "graph/mwis.hpp"

#include <limits>

#include "common/check.hpp"

namespace specmatch::graph {

std::string_view to_string(MwisAlgorithm algorithm) {
  switch (algorithm) {
    case MwisAlgorithm::kGwmin:
      return "gwmin";
    case MwisAlgorithm::kGwmin2:
      return "gwmin2";
    case MwisAlgorithm::kExact:
      return "exact";
  }
  return "unknown";
}

double set_weight(std::span<const double> weights,
                  const DynamicBitset& members) {
  double total = 0.0;
  members.for_each_set([&](std::size_t v) { total += weights[v]; });
  return total;
}

namespace {

/// Shared greedy skeleton: repeatedly pick the remaining candidate with the
/// highest score, add it, and remove its closed neighbourhood.
template <typename ScoreFn>
DynamicBitset greedy(const InterferenceGraph& graph,
                     std::span<const double> weights, DynamicBitset remaining,
                     ScoreFn&& score) {
  DynamicBitset chosen(graph.num_vertices());
  while (remaining.any()) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_v = remaining.size();
    remaining.for_each_set([&](std::size_t v) {
      const double s = score(v, remaining);
      if (s > best_score) {  // strict: ties resolve to the lowest index
        best_score = s;
        best_v = v;
      }
    });
    chosen.set(best_v);
    remaining.reset(best_v);
    remaining -= graph.neighbors(static_cast<BuyerId>(best_v));
    (void)weights;
  }
  return chosen;
}

struct ExactSearch {
  const InterferenceGraph& graph;
  std::span<const double> weights;
  std::uint64_t nodes = 0;
  double best_weight = 0.0;
  DynamicBitset best;

  void run(DynamicBitset remaining, DynamicBitset chosen, double weight) {
    ++nodes;
    if (weight > best_weight) {
      best_weight = weight;
      best = chosen;
    }
    // Admissible bound: take every remaining vertex.
    double bound = weight;
    remaining.for_each_set([&](std::size_t v) { bound += weights[v]; });
    if (bound <= best_weight) return;

    // Branch on the remaining vertex with the highest degree inside
    // `remaining` (fail-first: it prunes the most).
    std::size_t pivot = remaining.size();
    std::size_t pivot_degree = 0;
    bool have_pivot = false;
    remaining.for_each_set([&](std::size_t v) {
      const std::size_t d =
          (graph.neighbors(static_cast<BuyerId>(v)) & remaining).count();
      if (!have_pivot || d > pivot_degree) {
        have_pivot = true;
        pivot = v;
        pivot_degree = d;
      }
    });
    if (!have_pivot) return;

    // Include pivot.
    {
      DynamicBitset next = remaining;
      next.reset(pivot);
      next -= graph.neighbors(static_cast<BuyerId>(pivot));
      DynamicBitset with = chosen;
      with.set(pivot);
      run(std::move(next), std::move(with), weight + weights[pivot]);
    }
    // Exclude pivot.
    {
      DynamicBitset next = remaining;
      next.reset(pivot);
      run(std::move(next), std::move(chosen), weight);
    }
  }
};

}  // namespace

DynamicBitset solve_mwis(const InterferenceGraph& graph,
                         std::span<const double> weights,
                         const DynamicBitset& candidates,
                         MwisAlgorithm algorithm, MwisStats* stats) {
  SPECMATCH_CHECK_MSG(weights.size() == graph.num_vertices(),
                      "weights size " << weights.size() << " != vertices "
                                      << graph.num_vertices());
  SPECMATCH_CHECK(candidates.size() == graph.num_vertices());

  // Drop non-positive-weight vertices: they can only dilute a coalition.
  DynamicBitset viable = candidates;
  candidates.for_each_set([&](std::size_t v) {
    if (weights[v] <= 0.0) viable.reset(v);
  });

  switch (algorithm) {
    case MwisAlgorithm::kGwmin: {
      auto score = [&](std::size_t v, const DynamicBitset& remaining) {
        const double deg =
            static_cast<double>((graph.neighbors(static_cast<BuyerId>(v)) &
                                 remaining)
                                    .count());
        return weights[v] / (deg + 1.0);
      };
      return greedy(graph, weights, std::move(viable), score);
    }
    case MwisAlgorithm::kGwmin2: {
      auto score = [&](std::size_t v, const DynamicBitset& remaining) {
        double nbr_weight = 0.0;
        (graph.neighbors(static_cast<BuyerId>(v)) & remaining)
            .for_each_set([&](std::size_t u) { nbr_weight += weights[u]; });
        return weights[v] / (weights[v] + nbr_weight);
      };
      return greedy(graph, weights, std::move(viable), score);
    }
    case MwisAlgorithm::kExact: {
      ExactSearch search{graph, weights, 0, 0.0,
                         DynamicBitset(graph.num_vertices())};
      search.run(std::move(viable), DynamicBitset(graph.num_vertices()), 0.0);
      if (stats != nullptr) stats->nodes_explored = search.nodes;
      return search.best;
    }
  }
  SPECMATCH_CHECK_MSG(false, "unreachable MWIS algorithm");
  return DynamicBitset(graph.num_vertices());
}

}  // namespace specmatch::graph
