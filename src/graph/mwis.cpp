#include "graph/mwis.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace specmatch::graph {

std::string_view to_string(MwisAlgorithm algorithm) {
  switch (algorithm) {
    case MwisAlgorithm::kGwmin:
      return "gwmin";
    case MwisAlgorithm::kGwmin2:
      return "gwmin2";
    case MwisAlgorithm::kExact:
      return "exact";
  }
  return "unknown";
}

double set_weight(std::span<const double> weights,
                  const DynamicBitset& members) {
  double total = 0.0;
  members.for_each_set([&](std::size_t v) { total += weights[v]; });
  return total;
}

void MwisScratch::reserve(std::size_t n, std::size_t heap_entries) {
  viable.assign_zero(n);
  chosen.assign_zero(n);
  removed.assign_zero(n);
  touched.assign_zero(n);
  deg.reserve(n);
  version.reserve(n);
  heap.reserve(heap_entries);
}

namespace {

/// Per-solve work counters, accumulated locally (plain increments on the
/// pick loop) and flushed to the metrics registry once per solve_mwis call.
/// A null pointer (metrics disabled) keeps the loops free of even the
/// increment.
struct GreedyWork {
  std::uint64_t picks = 0;       ///< vertices chosen into the set
  std::uint64_t heap_pops = 0;   ///< incremental path: entries popped
  std::uint64_t stale_pops = 0;  ///< incremental path: version-stale skips
  std::uint64_t scan_evals = 0;  ///< scan path: score evaluations
};

/// GWMIN pick score: w(v) / (deg_R(v) + 1). degree_in is the fused
/// and-popcount kernel (common/simd.hpp) on dense graphs and an O(deg) row
/// walk on CSR — the integer degree (and hence the score bits) is identical
/// either way, and across every SIMD dispatch tier.
struct GwminScanScore {
  const InterferenceGraph& graph;
  std::span<const double> weights;

  double operator()(std::size_t v, const DynamicBitset& remaining) const {
    const double deg = static_cast<double>(
        graph.degree_in(static_cast<BuyerId>(v), remaining));
    return weights[v] / (deg + 1.0);
  }
};

/// GWMIN2 pick score: w(v) / (w(v) + w(N_R(v))). for_each_neighbor_in visits
/// the surviving neighbours in ascending order under both representations,
/// so the floating-point sum — and the score — is bit-identical. The SIMD
/// kernels only find the set bits to visit; the weight accumulation itself
/// deliberately stays scalar, in ascending index order, on every tier.
struct Gwmin2ScanScore {
  const InterferenceGraph& graph;
  std::span<const double> weights;

  double operator()(std::size_t v, const DynamicBitset& remaining) const {
    double nbr_weight = 0.0;
    graph.for_each_neighbor_in(
        static_cast<BuyerId>(v), remaining,
        [&](std::size_t u) { nbr_weight += weights[u]; });
    return weights[v] / (weights[v] + nbr_weight);
  }
};

/// Incremental GWMIN state: deg_R(v) is kept exact (an integer) under batch
/// removals, so a rescore is one division with the same operands the rescan
/// reference would produce — bit-identical by construction, and the update
/// work totals O(edges) over a whole solve instead of O(picks x candidates)
/// score recomputations. The degree array is borrowed from the caller's
/// scratch and fully re-initialised by init().
struct GwminIncremental {
  const InterferenceGraph& graph;
  std::span<const double> weights;
  std::vector<std::size_t>& deg;

  void init(const DynamicBitset& remaining) {
    deg.assign(graph.num_vertices(), 0);
    remaining.for_each_set([&](std::size_t v) {
      deg[v] = graph.degree_in(static_cast<BuyerId>(v), remaining);
    });
  }

  double score(std::size_t v, const DynamicBitset&) const {
    return weights[v] / (static_cast<double>(deg[v]) + 1.0);
  }

  /// `removed` has already been subtracted from `remaining`; updates the
  /// degrees and marks the survivors whose score changed.
  void apply_removal(const DynamicBitset& removed,
                     const DynamicBitset& remaining, DynamicBitset& touched) {
    removed.for_each_set([&](std::size_t u) {
      graph.for_each_neighbor_in(static_cast<BuyerId>(u), remaining,
                                 [&](std::size_t w) {
                                   --deg[w];
                                   touched.set(w);
                                 });
    });
  }
};

/// Incremental GWMIN2 state: the neighbour-weight sum cannot be maintained
/// by floating-point subtraction without drifting off the reference bits, so
/// touched survivors are re-summed — but only they are (the sum over
/// N_R(v) is unchanged for everyone else), and the sum itself walks the
/// intersection words directly instead of materialising a temporary.
struct Gwmin2Incremental {
  const InterferenceGraph& graph;
  std::span<const double> weights;

  void init(const DynamicBitset&) {}

  double score(std::size_t v, const DynamicBitset& remaining) const {
    return Gwmin2ScanScore{graph, weights}(v, remaining);
  }

  void apply_removal(const DynamicBitset& removed,
                     const DynamicBitset& remaining, DynamicBitset& touched) {
    removed.for_each_set([&](std::size_t u) {
      graph.add_neighbors_to(static_cast<BuyerId>(u), touched);
    });
    touched &= remaining;
  }
};

// Max-heap order on score; equal scores surface the lowest index first,
// matching the strict-greater scan of the rescan reference.
struct WorseEntry {
  bool operator()(const MwisScratch::HeapEntry& a,
                  const MwisScratch::HeapEntry& b) const {
    if (a.score != b.score) return a.score < b.score;
    return a.vertex > b.vertex;
  }
};

/// Incremental greedy skeleton: repeatedly pick the remaining candidate with
/// the highest score (ties to the lowest index) and remove its closed
/// neighbourhood — but instead of rescanning every candidate's score per
/// pick, keep scores in a lazy max-heap. After choosing v, both GWMIN scores
/// depend only on the candidate's neighbourhood inside `remaining`, so only
/// survivors adjacent to a removed vertex can change; the policy rescores
/// exactly those, with values bit-identical to a full rescan (same operands,
/// same summation order). Stale heap entries are skipped via a per-vertex
/// version counter. The heap is a plain vector driven by std::push_heap /
/// std::pop_heap — the exact operations std::priority_queue performs — so
/// the pop order is unchanged while the storage (and everything else in the
/// loop) comes from the reusable scratch.
/// `kCounting` is a compile-time switch so the metrics-off instantiation is
/// the exact pre-instrumentation loop — no per-pop null checks or register
/// pressure (the off-mode wall time is part of the perf acceptance bar).
template <bool kCounting, typename Policy>
void greedy(const InterferenceGraph& graph, Policy policy, MwisScratch& s,
            GreedyWork* work = nullptr) {
  const std::size_t n = graph.num_vertices();
  DynamicBitset& remaining = s.viable;
  s.chosen.assign_zero(n);
  if (remaining.none()) return;

  s.version.assign(n, 0);
  s.heap.clear();
  policy.init(remaining);
  remaining.for_each_set([&](std::size_t v) {
    s.heap.push_back(
        {policy.score(v, remaining), static_cast<std::uint32_t>(v), 0});
    std::push_heap(s.heap.begin(), s.heap.end(), WorseEntry{});
  });

  s.touched.assign_zero(n);
  while (remaining.any()) {
    // Every remaining vertex always has one current entry queued, so the
    // heap cannot run dry before `remaining` does.
    SPECMATCH_DCHECK(!s.heap.empty());
    std::pop_heap(s.heap.begin(), s.heap.end(), WorseEntry{});
    const MwisScratch::HeapEntry top = s.heap.back();
    s.heap.pop_back();
    if constexpr (kCounting) ++work->heap_pops;
    const std::size_t v = top.vertex;
    if (!remaining.test(v) || top.version != s.version[v]) {  // stale
      if constexpr (kCounting) ++work->stale_pops;
      continue;
    }

    if constexpr (kCounting) ++work->picks;
    s.chosen.set(v);
    graph.neighbors_in(static_cast<BuyerId>(v), remaining, s.removed);
    s.removed.set(v);
    remaining -= s.removed;

    s.touched.clear();
    policy.apply_removal(s.removed, remaining, s.touched);
    s.touched.for_each_set([&](std::size_t u) {
      s.heap.push_back({policy.score(u, remaining),
                        static_cast<std::uint32_t>(u), ++s.version[u]});
      std::push_heap(s.heap.begin(), s.heap.end(), WorseEntry{});
    });

    // Lazy-deletion compaction: when the accumulated stale debt outgrows the
    // live set, drop every superseded entry and re-heapify. The pick
    // sequence is unchanged — each surviving entry is the unique current one
    // for its vertex and WorseEntry is a strict total order on them, so the
    // pop order does not depend on the heap's internal arrangement. This is
    // what bounds the heap by max degree instead of by edge count (see
    // MwisScratch::heap_bound): without it a big sparse graph's heap would
    // grow toward n + E entries.
    if (s.heap.size() > 2 * n + 16) {
      s.heap.erase(
          std::remove_if(s.heap.begin(), s.heap.end(),
                         [&](const MwisScratch::HeapEntry& e) {
                           return !remaining.test(e.vertex) ||
                                  e.version != s.version[e.vertex];
                         }),
          s.heap.end());
      std::make_heap(s.heap.begin(), s.heap.end(), WorseEntry{});
    }
  }
}

/// Scan-mode greedy: recompute every remaining candidate's score per pick.
/// This is the right strategy on dense graphs, where nearly every survivor
/// is adjacent to the removed neighbourhood anyway and the word-parallel
/// bitset scoring beats per-edge bookkeeping. Also the body of the
/// solve_mwis_rescan baseline.
/// Picks the identical vertex sequence as the incremental skeleton: both
/// take the highest score with ties to the lowest index, and the score
/// values agree bit-for-bit.
template <bool kCounting = false, typename ScoreFn>
void greedy_scan(const InterferenceGraph& graph, const ScoreFn& score,
                 MwisScratch& s, GreedyWork* work = nullptr) {
  DynamicBitset& remaining = s.viable;
  s.chosen.assign_zero(graph.num_vertices());
  while (remaining.any()) {
    if constexpr (kCounting) {  // one popcount per pick, off the inner loop
      ++work->picks;
      work->scan_evals += remaining.count();
    }
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_v = remaining.size();
    remaining.for_each_set([&](std::size_t v) {
      const double s_v = score(v, remaining);
      if (s_v > best_score) {  // strict: ties resolve to the lowest index
        best_score = s_v;
        best_v = v;
      }
    });
    s.chosen.set(best_v);
    remaining.reset(best_v);
    graph.remove_neighbors_from(static_cast<BuyerId>(best_v), remaining);
  }
}

/// Fills `scratch.viable` with candidates minus non-positive-weight vertices:
/// they can only dilute a coalition.
void viable_candidates(std::span<const double> weights,
                       const DynamicBitset& candidates, MwisScratch& scratch) {
  scratch.viable = candidates;
  candidates.for_each_set([&](std::size_t v) {
    if (weights[v] <= 0.0) scratch.viable.reset(v);
  });
}

void check_inputs(const InterferenceGraph& graph,
                  std::span<const double> weights,
                  const DynamicBitset& candidates) {
  SPECMATCH_CHECK_MSG(weights.size() == graph.num_vertices(),
                      "weights size " << weights.size() << " != vertices "
                                      << graph.num_vertices());
  SPECMATCH_CHECK(candidates.size() == graph.num_vertices());
}

struct ExactSearch {
  const InterferenceGraph& graph;
  std::span<const double> weights;
  std::uint64_t nodes = 0;
  double best_weight = 0.0;
  DynamicBitset best;

  void run(DynamicBitset remaining, DynamicBitset chosen, double weight) {
    ++nodes;
    if (weight > best_weight) {
      best_weight = weight;
      best = chosen;
    }
    // Admissible bound: take every remaining vertex.
    double bound = weight;
    remaining.for_each_set([&](std::size_t v) { bound += weights[v]; });
    if (bound <= best_weight) return;

    // Branch on the remaining vertex with the highest degree inside
    // `remaining` (fail-first: it prunes the most).
    std::size_t pivot = remaining.size();
    std::size_t pivot_degree = 0;
    bool have_pivot = false;
    remaining.for_each_set([&](std::size_t v) {
      const std::size_t d = graph.degree_in(static_cast<BuyerId>(v), remaining);
      if (!have_pivot || d > pivot_degree) {
        have_pivot = true;
        pivot = v;
        pivot_degree = d;
      }
    });
    if (!have_pivot) return;

    // Include pivot.
    {
      DynamicBitset next = remaining;
      next.reset(pivot);
      graph.remove_neighbors_from(static_cast<BuyerId>(pivot), next);
      DynamicBitset with = chosen;
      with.set(pivot);
      run(std::move(next), std::move(with), weight + weights[pivot]);
    }
    // Exclude pivot.
    {
      DynamicBitset next = remaining;
      next.reset(pivot);
      run(std::move(next), std::move(chosen), weight);
    }
  }
};

}  // namespace

const DynamicBitset& solve_mwis(const InterferenceGraph& graph,
                                std::span<const double> weights,
                                const DynamicBitset& candidates,
                                MwisAlgorithm algorithm, MwisScratch& scratch,
                                MwisStats* stats) {
  check_inputs(graph, weights, candidates);
  viable_candidates(weights, candidates, scratch);

  // Strategy split (outputs are bit-identical either way): lazy incremental
  // scoring wins when neighbourhoods are small relative to the candidate
  // set (the market's geometric graphs); on high-average-degree graphs with
  // dense bitset rows, nearly every survivor is rescored every pick
  // regardless, so the word-parallel scan without the heap bookkeeping is
  // faster. CSR graphs have no word-parallel rows and always take the
  // incremental path (mwis_uses_scan, shared with workspace heap sizing).
  const bool dense = mwis_uses_scan(graph);

  GreedyWork work;
  GreedyWork* wp = metrics::enabled() ? &work : nullptr;
  // Dispatch once on (algorithm, density, counting); the counting=false
  // instantiations are the uninstrumented loops, so metrics-off runs pay
  // nothing inside the pick loop.
  const auto run_greedy = [&](auto policy, auto scan_score) {
    if (dense) {
      if (wp != nullptr)
        greedy_scan<true>(graph, scan_score, scratch, wp);
      else
        greedy_scan(graph, scan_score, scratch);
      return;
    }
    if (wp != nullptr)
      greedy<true>(graph, std::move(policy), scratch, wp);
    else
      greedy<false>(graph, std::move(policy), scratch);
  };
  bool solved = false;
  switch (algorithm) {
    case MwisAlgorithm::kGwmin:
      run_greedy(GwminIncremental{graph, weights, scratch.deg},
                 GwminScanScore{graph, weights});
      solved = true;
      break;
    case MwisAlgorithm::kGwmin2:
      run_greedy(Gwmin2Incremental{graph, weights},
                 Gwmin2ScanScore{graph, weights});
      solved = true;
      break;
    case MwisAlgorithm::kExact: {
      ExactSearch search{graph, weights, 0, 0.0,
                         DynamicBitset(graph.num_vertices())};
      search.run(scratch.viable, DynamicBitset(graph.num_vertices()), 0.0);
      if (stats != nullptr) stats->nodes_explored = search.nodes;
      if (wp != nullptr)
        metrics::count("mwis.exact_nodes",
                       static_cast<std::int64_t>(search.nodes));
      work.picks = search.best.count();
      scratch.chosen = search.best;
      solved = true;
      break;
    }
  }
  SPECMATCH_CHECK_MSG(solved, "unreachable MWIS algorithm");
  if (wp != nullptr) {
    metrics::count("mwis.calls");
    metrics::count("mwis.picks", static_cast<std::int64_t>(work.picks));
    if (algorithm != MwisAlgorithm::kExact) {
      if (dense) {
        metrics::count("mwis.fallback_scans");
        metrics::count("mwis.scan_score_evals",
                       static_cast<std::int64_t>(work.scan_evals));
      } else {
        metrics::count("mwis.heap_pops",
                       static_cast<std::int64_t>(work.heap_pops));
        metrics::count("mwis.stale_pops",
                       static_cast<std::int64_t>(work.stale_pops));
      }
    }
  }
  return scratch.chosen;
}

DynamicBitset solve_mwis(const InterferenceGraph& graph,
                         std::span<const double> weights,
                         const DynamicBitset& candidates,
                         MwisAlgorithm algorithm, MwisStats* stats) {
  MwisScratch scratch;
  solve_mwis(graph, weights, candidates, algorithm, scratch, stats);
  return std::move(scratch.chosen);
}

DynamicBitset solve_mwis_rescan(const InterferenceGraph& graph,
                                std::span<const double> weights,
                                const DynamicBitset& candidates,
                                MwisAlgorithm algorithm) {
  check_inputs(graph, weights, candidates);
  SPECMATCH_CHECK_MSG(algorithm != MwisAlgorithm::kExact,
                      "the rescan reference only exists for the greedy "
                      "algorithms");
  MwisScratch scratch;
  viable_candidates(weights, candidates, scratch);
  if (algorithm == MwisAlgorithm::kGwmin)
    greedy_scan(graph, GwminScanScore{graph, weights}, scratch);
  else
    greedy_scan(graph, Gwmin2ScanScore{graph, weights}, scratch);
  return std::move(scratch.chosen);
}

}  // namespace specmatch::graph
