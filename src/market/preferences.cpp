#include "market/preferences.hpp"

#include "market/coalition.hpp"

namespace specmatch::market {

double buyer_utility_in(const SpectrumMarket& market, BuyerId j,
                        ChannelId channel, const DynamicBitset& members) {
  if (channel == kUnmatched) return 0.0;
  // Interference graphs have no self-loops (add_edge rejects them), so N(j)
  // can never contain j and testing against `members` directly is already
  // j-exclusive — no copy-and-mask-out-j temporary. This predicate is the
  // innermost call of Stage II screening and every stability check, so it
  // must stay allocation-free: is_compatible is one word-parallel intersects
  // on dense graphs and an early-exit O(deg) row walk on CSR.
  if (!market.graph(channel).is_compatible(j, members)) return 0.0;
  return market.utility(channel, j);
}

bool buyer_prefers(const SpectrumMarket& market, BuyerId j, ChannelId channel1,
                   const DynamicBitset& members1, ChannelId channel2,
                   const DynamicBitset& members2) {
  const double u1 = buyer_utility_in(market, j, channel1, members1);
  const double u2 = buyer_utility_in(market, j, channel2, members2);
  return u1 > u2;
}

bool seller_prefers(const SpectrumMarket& market, ChannelId channel,
                    const DynamicBitset& members_a,
                    const DynamicBitset& members_b) {
  // Eq. (6) with the paper's indifference assumptions collapses to comparing
  // "effective values": an interference-free coalition is worth its total
  // offered price, an interfering one ties with being unmatched (worth 0,
  // since prices are non-negative).
  const auto effective = [&](const DynamicBitset& members) {
    return coalition_value(market, channel, members).value_or(0.0);
  };
  return effective(members_a) > effective(members_b);
}

}  // namespace specmatch::market
