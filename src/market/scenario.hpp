// Parent-level market description and its dummy virtualisation (§II-A).
//
// Seller i owning m_i channels becomes m_i virtual sellers (one channel
// each); buyer j demanding n_j channels becomes n_j virtual buyers. Dummies
// of the same parent buyer interfere on *every* channel so they can never be
// matched to the same one.
#pragma once

#include <vector>

#include "graph/generators.hpp"
#include "market/market.hpp"

namespace specmatch::market {

struct Scenario {
  /// m_i: number of channels each parent seller offers (all >= 1).
  std::vector<int> seller_channel_counts;
  /// n_j: number of channels each parent buyer demands (all >= 1).
  std::vector<int> buyer_demands;
  /// Location of each parent buyer in the deployment area; all dummies of a
  /// parent share its location.
  std::vector<graph::Point> buyer_locations;
  /// Transmission range of each *virtual* channel, size M = sum m_i.
  std::vector<double> channel_ranges;
  /// b_{i,j} for every virtual channel i and virtual buyer j, channel-major:
  /// utilities[i * N + j], size M * N with N = sum n_j.
  std::vector<double> utilities;
  /// Optional per-channel seller reserve prices (extension): a buyer can
  /// only trade on channel i if b_{i,j} > reserve. Empty = all zero.
  std::vector<double> channel_reserves;

  int num_channels() const;        ///< M = sum m_i
  int num_virtual_buyers() const;  ///< N = sum n_j

  /// Parent index of each virtual buyer, size N.
  std::vector<int> virtual_buyer_parents() const;
  /// Parent index of each virtual seller/channel, size M.
  std::vector<int> virtual_seller_parents() const;

  /// Throws CheckError if sizes are inconsistent.
  void validate() const;
};

/// Expands the scenario into a SpectrumMarket: builds one geometric
/// interference graph per channel from buyer locations and the channel's
/// transmission range, then adds same-parent dummy edges on every channel.
SpectrumMarket build_market(const Scenario& scenario);

}  // namespace specmatch::market
