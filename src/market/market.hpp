// SpectrumMarket: the virtualised market the algorithms operate on.
//
// M virtual sellers (one channel each), N virtual buyers, the price matrix
// b_{i,j} (a buyer's utility for a channel doubles as her offered price,
// §II-A), and one interference graph per channel. Immutable once built.
#pragma once

#include <span>
#include <vector>

#include "common/ids.hpp"
#include "graph/interference_graph.hpp"

namespace specmatch::market {

class SpectrumMarket {
 public:
  /// `prices` is channel-major: prices[i * N + j] = b_{i,j}. `graphs` holds
  /// one interference graph per channel, each over N vertices. Parent maps
  /// default to the identity (every virtual participant is its own parent).
  /// `reserves` (one per channel; empty = all zero) are seller reserve
  /// prices: a buyer participates on channel i only if b_{i,j} > reserve_i.
  SpectrumMarket(int num_channels, int num_buyers, std::vector<double> prices,
                 std::vector<graph::InterferenceGraph> graphs,
                 std::vector<int> buyer_parents = {},
                 std::vector<int> seller_parents = {},
                 std::vector<double> reserves = {});

  int num_channels() const { return num_channels_; }  ///< M
  int num_buyers() const { return num_buyers_; }      ///< N

  /// b_{i,j}: buyer j's utility for (= price offered on) channel i.
  double utility(ChannelId i, BuyerId j) const {
    return prices_[index(i, j)];
  }

  /// Overwrites b_{i,j} in place. The one sanctioned mutation of a built
  /// market: the serving layer keeps markets resident and applies
  /// price-update / join / leave batches by rewriting price cells (join and
  /// leave mask a buyer by zeroing her column, the dynamics/epochs trick)
  /// instead of rebuilding M graphs per request. Topology stays immutable.
  /// Not thread-safe against concurrent solves on the same market; the
  /// server serialises per-market batches.
  void set_utility(ChannelId i, BuyerId j, double value) {
    prices_[index(i, j)] = value;
  }

  /// All buyers' prices on channel i — the MWIS weight vector of seller i.
  std::span<const double> channel_prices(ChannelId i) const;

  /// Buyer j's utility vector B_j = (b_{1,j}, ..., b_{M,j}) (materialised).
  std::vector<double> buyer_utilities(BuyerId j) const;

  const graph::InterferenceGraph& graph(ChannelId i) const;

  /// e^i_{j,j'}: do buyers j and j' interfere on channel i?
  bool interferes(ChannelId i, BuyerId j, BuyerId k) const;

  /// Seller i's reserve price (0 unless configured).
  double reserve(ChannelId i) const;

  /// Participation constraint: may buyer j trade on channel i at all?
  /// True iff her price strictly exceeds the channel's reserve (and is
  /// positive). Every algorithm and stability analyser routes through this.
  bool admissible(ChannelId i, BuyerId j) const {
    const double b = utility(i, j);
    return b > 0.0 && b > reserves_[static_cast<std::size_t>(i)];
  }

  /// Channels sorted by buyer j's utility, descending (index-ascending on
  /// ties), keeping only admissible channels (positive utility above the
  /// channel's reserve). This is the buyer's proposal order in Stage I.
  std::vector<ChannelId> buyer_preference_order(BuyerId j) const;

  /// Appends buyer j's preference order (same order as above) to `out`
  /// without allocating beyond `out`'s own growth — the engine's workspace
  /// builds its flattened CSR preference table through this.
  void append_buyer_preference_order(BuyerId j,
                                     std::vector<ChannelId>& out) const;

  int buyer_parent(BuyerId j) const;
  int seller_parent(SellerId i) const;

 private:
  std::size_t index(ChannelId i, BuyerId j) const;

  int num_channels_;
  int num_buyers_;
  std::vector<double> prices_;  // channel-major, M * N
  std::vector<graph::InterferenceGraph> graphs_;
  std::vector<int> buyer_parents_;
  std::vector<int> seller_parents_;
  std::vector<double> reserves_;  // per channel, defaults to zeros
};

/// The same market with every interference graph rebuilt under `rep`
/// (identical vertices, edges, prices, parents, reserves). Used by the
/// dense-vs-CSR property tests and the bench representation-comparison leg.
SpectrumMarket with_graph_representation(const SpectrumMarket& market,
                                         graph::GraphRep rep);

}  // namespace specmatch::market
