#include "market/scenario.hpp"

#include <numeric>
#include <utility>

#include "common/check.hpp"

namespace specmatch::market {

int Scenario::num_channels() const {
  return std::accumulate(seller_channel_counts.begin(),
                         seller_channel_counts.end(), 0);
}

int Scenario::num_virtual_buyers() const {
  return std::accumulate(buyer_demands.begin(), buyer_demands.end(), 0);
}

std::vector<int> Scenario::virtual_buyer_parents() const {
  std::vector<int> parents;
  parents.reserve(static_cast<std::size_t>(num_virtual_buyers()));
  for (std::size_t p = 0; p < buyer_demands.size(); ++p)
    for (int d = 0; d < buyer_demands[p]; ++d)
      parents.push_back(static_cast<int>(p));
  return parents;
}

std::vector<int> Scenario::virtual_seller_parents() const {
  std::vector<int> parents;
  parents.reserve(static_cast<std::size_t>(num_channels()));
  for (std::size_t p = 0; p < seller_channel_counts.size(); ++p)
    for (int c = 0; c < seller_channel_counts[p]; ++c)
      parents.push_back(static_cast<int>(p));
  return parents;
}

void Scenario::validate() const {
  SPECMATCH_CHECK_MSG(!seller_channel_counts.empty(), "no sellers");
  SPECMATCH_CHECK_MSG(!buyer_demands.empty(), "no buyers");
  for (int m : seller_channel_counts)
    SPECMATCH_CHECK_MSG(m >= 1, "seller must offer at least one channel");
  for (int n : buyer_demands)
    SPECMATCH_CHECK_MSG(n >= 1, "buyer must demand at least one channel");
  SPECMATCH_CHECK_MSG(buyer_locations.size() == buyer_demands.size(),
                      "one location per parent buyer");
  const auto M = static_cast<std::size_t>(num_channels());
  const auto N = static_cast<std::size_t>(num_virtual_buyers());
  SPECMATCH_CHECK_MSG(channel_ranges.size() == M,
                      "one transmission range per virtual channel");
  SPECMATCH_CHECK_MSG(utilities.size() == M * N,
                      "utility matrix must be M x N = " << M * N
                                                        << " entries, got "
                                                        << utilities.size());
  for (double r : channel_ranges)
    SPECMATCH_CHECK_MSG(r > 0.0, "transmission range must be positive");
  if (!channel_reserves.empty()) {
    SPECMATCH_CHECK_MSG(channel_reserves.size() == M,
                        "one reserve price per virtual channel");
    for (double r : channel_reserves)
      SPECMATCH_CHECK_MSG(r >= 0.0, "reserve prices must be non-negative");
  }
}

SpectrumMarket build_market(const Scenario& scenario) {
  scenario.validate();
  const int M = scenario.num_channels();
  const int N = scenario.num_virtual_buyers();
  const auto buyer_parents = scenario.virtual_buyer_parents();

  // Every dummy sits at its parent's location.
  std::vector<graph::Point> positions;
  positions.reserve(static_cast<std::size_t>(N));
  for (int j = 0; j < N; ++j)
    positions.push_back(
        scenario.buyer_locations[static_cast<std::size_t>(
            buyer_parents[static_cast<std::size_t>(j)])]);

  // Dummies of the same parent form contiguous runs of virtual_buyer_parents
  // (it emits each parent's dummies back-to-back); precompute the runs once
  // so the per-channel clique pass below is O(sum of run sizes squared), not
  // the all-pairs O(N^2) scan per channel it used to be.
  std::vector<std::pair<int, int>> parent_runs;  // [start, end) per parent
  for (int start = 0; start < N;) {
    int end = start + 1;
    while (end < N && buyer_parents[static_cast<std::size_t>(end)] ==
                          buyer_parents[static_cast<std::size_t>(start)])
      ++end;
    if (end - start > 1) parent_runs.emplace_back(start, end);
    start = end;
  }

  std::vector<graph::InterferenceGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(M));
  for (int i = 0; i < M; ++i) {
    auto g = graph::geometric(positions,
                              scenario.channel_ranges[static_cast<std::size_t>(i)]);
    // Dummies of the same parent must never share a channel (§II-A). Their
    // distance is zero so the geometric pass already links them, but we add
    // the edges explicitly so the invariant survives any generator change.
    for (const auto& [start, end] : parent_runs)
      for (int a = start; a < end; ++a)
        for (int b = a + 1; b < end; ++b) g.add_edge(a, b);
    // Compact each CSR graph before accumulating the next one, so the build
    // footprint is one channel's worth of mutable rows, not all M.
    g.finalize();
    graphs.push_back(std::move(g));
  }

  return SpectrumMarket(M, N, scenario.utilities, std::move(graphs),
                        buyer_parents, scenario.virtual_seller_parents(),
                        scenario.channel_reserves);
}

}  // namespace specmatch::market
