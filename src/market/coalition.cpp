#include "market/coalition.hpp"

#include "graph/mwis.hpp"

namespace specmatch::market {

double total_price(const SpectrumMarket& market, ChannelId channel,
                   const DynamicBitset& members) {
  return graph::set_weight(market.channel_prices(channel), members);
}

bool interference_free(const SpectrumMarket& market, ChannelId channel,
                       const DynamicBitset& members) {
  return market.graph(channel).is_independent(members);
}

std::optional<double> coalition_value(const SpectrumMarket& market,
                                      ChannelId channel,
                                      const DynamicBitset& members) {
  if (!interference_free(market, channel, members)) return std::nullopt;
  return total_price(market, channel, members);
}

}  // namespace specmatch::market
