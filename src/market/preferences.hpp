// The peer-effect preference relations of eqs. (5) and (6).
//
// A buyer matched next to an interfering neighbour gets zero utility; a
// seller whose coalition contains interference ranks it with "unmatched".
// These small pure functions are the single source of truth used by the
// synchronous algorithms, the distributed agents, and the stability
// analysers, so the protocol cannot drift from the model.
#pragma once

#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "market/market.hpp"

namespace specmatch::market {

/// Buyer j's utility inside coalition (channel, members): b_{channel,j} if no
/// interfering neighbour of j is a member, else 0 (peer effect, §III-A).
/// j itself may or may not be included in `members`; only *other* members
/// count as neighbours. channel == kUnmatched means "unmatched" and yields 0.
double buyer_utility_in(const SpectrumMarket& market, BuyerId j,
                        ChannelId channel, const DynamicBitset& members);

/// Eq. (5): does buyer j strictly prefer coalition 1 to coalition 2?
/// Under the zero-utility-on-interference assumption this reduces to
/// comparing buyer_utility_in values; equal utilities are indifference.
bool buyer_prefers(const SpectrumMarket& market, BuyerId j, ChannelId channel1,
                   const DynamicBitset& members1, ChannelId channel2,
                   const DynamicBitset& members2);

/// Eq. (6): does seller of `channel` strictly prefer member set A to B?
/// Interference-free beats interfering; among interference-free sets, higher
/// total offered price wins; interfering sets tie with each other and with
/// the empty set.
bool seller_prefers(const SpectrumMarket& market, ChannelId channel,
                    const DynamicBitset& members_a,
                    const DynamicBitset& members_b);

}  // namespace specmatch::market
