#include "market/market.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "common/check.hpp"

namespace specmatch::market {

SpectrumMarket::SpectrumMarket(int num_channels, int num_buyers,
                               std::vector<double> prices,
                               std::vector<graph::InterferenceGraph> graphs,
                               std::vector<int> buyer_parents,
                               std::vector<int> seller_parents,
                               std::vector<double> reserves)
    : num_channels_(num_channels),
      num_buyers_(num_buyers),
      prices_(std::move(prices)),
      graphs_(std::move(graphs)),
      buyer_parents_(std::move(buyer_parents)),
      seller_parents_(std::move(seller_parents)),
      reserves_(std::move(reserves)) {
  SPECMATCH_CHECK_MSG(num_channels_ > 0, "market needs at least one channel");
  SPECMATCH_CHECK_MSG(num_buyers_ > 0, "market needs at least one buyer");
  SPECMATCH_CHECK_MSG(
      prices_.size() == static_cast<std::size_t>(num_channels_) *
                            static_cast<std::size_t>(num_buyers_),
      "price matrix has " << prices_.size() << " entries, expected "
                          << num_channels_ * num_buyers_);
  SPECMATCH_CHECK_MSG(graphs_.size() == static_cast<std::size_t>(num_channels_),
                      "need one interference graph per channel");
  for (auto& g : graphs_) {
    SPECMATCH_CHECK_MSG(
        g.num_vertices() == static_cast<std::size_t>(num_buyers_),
        "graph over " << g.num_vertices() << " vertices, expected "
                      << num_buyers_);
    // Markets are immutable, so CSR graphs can drop their mutable build rows
    // for the compact flat arrays here (a no-op when already finalized or
    // dense).
    g.finalize();
  }
  if (buyer_parents_.empty()) {
    buyer_parents_.resize(static_cast<std::size_t>(num_buyers_));
    std::iota(buyer_parents_.begin(), buyer_parents_.end(), 0);
  }
  if (seller_parents_.empty()) {
    seller_parents_.resize(static_cast<std::size_t>(num_channels_));
    std::iota(seller_parents_.begin(), seller_parents_.end(), 0);
  }
  SPECMATCH_CHECK(buyer_parents_.size() ==
                  static_cast<std::size_t>(num_buyers_));
  SPECMATCH_CHECK(seller_parents_.size() ==
                  static_cast<std::size_t>(num_channels_));
  if (reserves_.empty())
    reserves_.assign(static_cast<std::size_t>(num_channels_), 0.0);
  SPECMATCH_CHECK_MSG(reserves_.size() ==
                          static_cast<std::size_t>(num_channels_),
                      "one reserve price per channel");
  for (double r : reserves_)
    SPECMATCH_CHECK_MSG(r >= 0.0, "negative reserve price " << r);
}

double SpectrumMarket::reserve(ChannelId i) const {
  SPECMATCH_CHECK(i >= 0 && i < num_channels_);
  return reserves_[static_cast<std::size_t>(i)];
}

std::size_t SpectrumMarket::index(ChannelId i, BuyerId j) const {
  SPECMATCH_DCHECK(i >= 0 && i < num_channels_);
  SPECMATCH_DCHECK(j >= 0 && j < num_buyers_);
  return static_cast<std::size_t>(i) * static_cast<std::size_t>(num_buyers_) +
         static_cast<std::size_t>(j);
}

std::span<const double> SpectrumMarket::channel_prices(ChannelId i) const {
  SPECMATCH_CHECK(i >= 0 && i < num_channels_);
  return std::span<const double>(prices_)
      .subspan(static_cast<std::size_t>(i) *
                   static_cast<std::size_t>(num_buyers_),
               static_cast<std::size_t>(num_buyers_));
}

std::vector<double> SpectrumMarket::buyer_utilities(BuyerId j) const {
  SPECMATCH_CHECK(j >= 0 && j < num_buyers_);
  std::vector<double> out(static_cast<std::size_t>(num_channels_));
  for (ChannelId i = 0; i < num_channels_; ++i) out[static_cast<std::size_t>(i)] = utility(i, j);
  return out;
}

const graph::InterferenceGraph& SpectrumMarket::graph(ChannelId i) const {
  SPECMATCH_CHECK(i >= 0 && i < num_channels_);
  return graphs_[static_cast<std::size_t>(i)];
}

bool SpectrumMarket::interferes(ChannelId i, BuyerId j, BuyerId k) const {
  return graph(i).has_edge(j, k);
}

std::vector<ChannelId> SpectrumMarket::buyer_preference_order(
    BuyerId j) const {
  std::vector<ChannelId> order;
  order.reserve(static_cast<std::size_t>(num_channels_));
  append_buyer_preference_order(j, order);
  return order;
}

void SpectrumMarket::append_buyer_preference_order(
    BuyerId j, std::vector<ChannelId>& out) const {
  const std::size_t begin = out.size();
  for (ChannelId i = 0; i < num_channels_; ++i)
    if (admissible(i, j)) out.push_back(i);
  // Plain sort with the index tie-break: channels enter index-ascending, so
  // this yields exactly the stable_sort-by-utility order the engine has
  // always used, without stable_sort's temporary buffer.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(begin), out.end(),
            [&](ChannelId a, ChannelId b) {
              const double ua = utility(a, j);
              const double ub = utility(b, j);
              if (ua != ub) return ua > ub;
              return a < b;
            });
}

int SpectrumMarket::buyer_parent(BuyerId j) const {
  SPECMATCH_CHECK(j >= 0 && j < num_buyers_);
  return buyer_parents_[static_cast<std::size_t>(j)];
}

int SpectrumMarket::seller_parent(SellerId i) const {
  SPECMATCH_CHECK(i >= 0 && i < num_channels_);
  return seller_parents_[static_cast<std::size_t>(i)];
}

SpectrumMarket with_graph_representation(const SpectrumMarket& market,
                                         graph::GraphRep rep) {
  const int M = market.num_channels();
  const int N = market.num_buyers();
  std::vector<double> prices;
  prices.reserve(static_cast<std::size_t>(M) * static_cast<std::size_t>(N));
  std::vector<graph::InterferenceGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(M));
  std::vector<int> seller_parents;
  seller_parents.reserve(static_cast<std::size_t>(M));
  std::vector<double> reserves;
  reserves.reserve(static_cast<std::size_t>(M));
  for (ChannelId i = 0; i < M; ++i) {
    const auto row = market.channel_prices(i);
    prices.insert(prices.end(), row.begin(), row.end());
    graphs.push_back(graph::with_representation(market.graph(i), rep));
    seller_parents.push_back(market.seller_parent(i));
    reserves.push_back(market.reserve(i));
  }
  std::vector<int> buyer_parents;
  buyer_parents.reserve(static_cast<std::size_t>(N));
  for (BuyerId j = 0; j < N; ++j)
    buyer_parents.push_back(market.buyer_parent(j));
  return SpectrumMarket(M, N, std::move(prices), std::move(graphs),
                        std::move(buyer_parents), std::move(seller_parents),
                        std::move(reserves));
}

}  // namespace specmatch::market
