// Spectrum coalitions (§III-A): a seller plus the buyers matched to her.
#pragma once

#include <optional>

#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "market/market.hpp"

namespace specmatch::market {

/// A seller's coalition: the set of buyers matched to channel `channel`.
struct Coalition {
  ChannelId channel = kUnmatched;
  DynamicBitset members;
};

/// Sum of offered prices of `members` on `channel` (the seller's utility if
/// the coalition is interference-free).
double total_price(const SpectrumMarket& market, ChannelId channel,
                   const DynamicBitset& members);

/// True iff no two members interfere on `channel`.
bool interference_free(const SpectrumMarket& market, ChannelId channel,
                       const DynamicBitset& members);

/// The seller's utility of the coalition: total price if interference-free,
/// otherwise nullopt (an interfering coalition ranks below every
/// interference-free one and ties with "unmatched", eq. 6).
std::optional<double> coalition_value(const SpectrumMarket& market,
                                      ChannelId channel,
                                      const DynamicBitset& members);

}  // namespace specmatch::market
