// Temporal market dynamics (extension; the paper's §VI cites online double
// auctions TODA / LOTUS as the dynamic-spectrum state of the art).
//
// The market runs in epochs: buyers leave with probability `leave_prob` and
// re-join with probability `join_prob`; inactive buyers are modelled by
// zeroing their prices, which makes them invisible to every algorithm (they
// never propose and are never invited). Two re-matching policies compete:
//
//   cold — rerun the full two-stage algorithm from scratch each epoch;
//   warm — keep the surviving assignments and run only Stage II (transfer &
//          invitation) on top: departures free capacity, arrivals enter as
//          unmatched applicants. Legal because a surviving assignment is
//          still interference-free, and no buyer can end up worse than her
//          carried-over match (Stage II never evicts).
//
// bench/dynamic_market reports welfare, disruption (matched survivors whose
// channel changed), and rounds for both policies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "matching/two_stage.hpp"

namespace specmatch::dynamics {

struct DynamicsParams {
  int epochs = 20;
  double leave_prob = 0.2;  ///< per-epoch chance an active buyer departs
  double join_prob = 0.4;   ///< per-epoch chance an inactive buyer returns
  std::uint64_t seed = 2016;
  graph::MwisAlgorithm coalition_policy = graph::MwisAlgorithm::kGwmin;
};

struct EpochStats {
  int epoch = 0;
  int active_buyers = 0;
  int arrivals = 0;
  int departures = 0;
  double welfare_cold = 0.0;
  double welfare_warm = 0.0;
  /// Among buyers active and matched in both this and the previous epoch:
  /// how many sit on a different channel now.
  int disrupted_cold = 0;
  int disrupted_warm = 0;
  int rounds_cold = 0;  ///< stage-1 + stage-2 rounds of the cold rerun
  int rounds_warm = 0;  ///< stage-2 rounds of the warm update
};

struct DynamicsResult {
  std::vector<EpochStats> epochs;
  double total_welfare_cold = 0.0;
  double total_welfare_warm = 0.0;
  int total_disrupted_cold = 0;
  int total_disrupted_warm = 0;
};

/// Simulates `params.epochs` epochs of churn over `market` (all buyers start
/// active). Deterministic in params.seed.
DynamicsResult run_dynamic_market(const market::SpectrumMarket& market,
                                  const DynamicsParams& params);

}  // namespace specmatch::dynamics
