#include "dynamics/epochs.hpp"

#include <vector>

#include "common/check.hpp"
#include "matching/stability.hpp"
#include "matching/transfer_invitation.hpp"

namespace specmatch::dynamics {

namespace {

/// A copy of `market` where inactive buyers' prices are zeroed.
market::SpectrumMarket masked_market(const market::SpectrumMarket& market,
                                     const std::vector<bool>& active) {
  const int M = market.num_channels();
  const int N = market.num_buyers();
  std::vector<double> prices;
  prices.reserve(static_cast<std::size_t>(M) * static_cast<std::size_t>(N));
  std::vector<graph::InterferenceGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(M));
  for (ChannelId i = 0; i < M; ++i) {
    const auto row = market.channel_prices(i);
    for (BuyerId j = 0; j < N; ++j)
      prices.push_back(active[static_cast<std::size_t>(j)]
                           ? row[static_cast<std::size_t>(j)]
                           : 0.0);
    graphs.push_back(market.graph(i));
  }
  return market::SpectrumMarket(M, N, std::move(prices), std::move(graphs));
}

int count_disrupted(const matching::Matching& previous,
                    const matching::Matching& current,
                    const std::vector<bool>& active_before,
                    const std::vector<bool>& active_now) {
  int disrupted = 0;
  for (BuyerId j = 0; j < current.num_buyers(); ++j) {
    if (!active_before[static_cast<std::size_t>(j)] ||
        !active_now[static_cast<std::size_t>(j)])
      continue;
    if (previous.is_matched(j) && current.is_matched(j) &&
        previous.seller_of(j) != current.seller_of(j))
      ++disrupted;
  }
  return disrupted;
}

}  // namespace

DynamicsResult run_dynamic_market(const market::SpectrumMarket& market,
                                  const DynamicsParams& params) {
  SPECMATCH_CHECK(params.epochs > 0);
  SPECMATCH_CHECK(params.leave_prob >= 0.0 && params.leave_prob <= 1.0);
  SPECMATCH_CHECK(params.join_prob >= 0.0 && params.join_prob <= 1.0);

  Rng rng(params.seed);
  const int N = market.num_buyers();
  std::vector<bool> active(static_cast<std::size_t>(N), true);

  matching::TwoStageConfig two_stage_config;
  two_stage_config.coalition_policy = params.coalition_policy;
  matching::StageIIConfig stage2_config;
  stage2_config.coalition_policy = params.coalition_policy;

  DynamicsResult result;
  matching::Matching prev_cold(market.num_channels(), N);
  matching::Matching prev_warm(market.num_channels(), N);
  std::vector<bool> active_before = active;

  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    EpochStats stats;
    stats.epoch = epoch;

    // Churn (skipped in epoch 0 so both policies start from the same state).
    active_before = active;
    if (epoch > 0) {
      for (std::size_t j = 0; j < active.size(); ++j) {
        if (active[j] && rng.bernoulli(params.leave_prob)) {
          active[j] = false;
          ++stats.departures;
        } else if (!active[j] && rng.bernoulli(params.join_prob)) {
          active[j] = true;
          ++stats.arrivals;
        }
      }
    }
    for (bool a : active)
      if (a) ++stats.active_buyers;

    const auto epoch_market = masked_market(market, active);

    // Cold: full two-stage rerun.
    const auto cold = matching::run_two_stage(epoch_market, two_stage_config);
    stats.welfare_cold = cold.welfare_final;
    stats.rounds_cold = cold.stage1.rounds + cold.stage2.phase1_rounds +
                        cold.stage2.phase2_rounds;

    // Warm: carry over surviving assignments, run Stage II only.
    matching::Matching carried = prev_warm;
    for (BuyerId j = 0; j < N; ++j)
      if (!active[static_cast<std::size_t>(j)]) carried.unmatch(j);
    const auto warm =
        matching::run_transfer_invitation(epoch_market, carried,
                                          stage2_config);
    stats.welfare_warm = warm.matching.social_welfare(epoch_market);
    stats.rounds_warm = warm.phase1_rounds + warm.phase2_rounds;

    SPECMATCH_CHECK(
        matching::is_interference_free(epoch_market, warm.matching));

    stats.disrupted_cold = count_disrupted(prev_cold, cold.final_matching(),
                                           active_before, active);
    stats.disrupted_warm =
        count_disrupted(prev_warm, warm.matching, active_before, active);

    prev_cold = cold.final_matching();
    prev_warm = warm.matching;

    result.total_welfare_cold += stats.welfare_cold;
    result.total_welfare_warm += stats.welfare_warm;
    result.total_disrupted_cold += stats.disrupted_cold;
    result.total_disrupted_warm += stats.disrupted_warm;
    result.epochs.push_back(stats);
  }
  return result;
}

}  // namespace specmatch::dynamics
