// Bundle-aware exact optimum: maximises bundle welfare (valuation::*) over
// all feasible assignments — the benchmark for footnote 1's complements /
// substitutes extension. With gamma = 0 this coincides with solve_optimal.
#pragma once

#include <cstdint>

#include "matching/matching.hpp"
#include "valuation/bundle.hpp"

namespace specmatch::optimal {

struct BundleOptimalResult {
  matching::Matching matching;
  double welfare = 0.0;
  std::uint64_t nodes_explored = 0;
};

/// Exact branch & bound over parents (each parent's dummies assigned as a
/// block so the bundle factor is applied once). Exponential worst case —
/// intended for small instances, like solve_optimal.
BundleOptimalResult solve_bundle_optimal(
    const market::SpectrumMarket& market,
    const valuation::BundleValuation& valuation);

}  // namespace specmatch::optimal
