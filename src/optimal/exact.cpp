#include "optimal/exact.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace specmatch::optimal {

namespace {

struct Search {
  const market::SpectrumMarket& market;
  /// Buyers in descending-max-utility order (good solutions found early).
  std::vector<BuyerId> order;
  /// suffix_max[k] = sum over order[k..] of each buyer's best utility —
  /// an admissible bound on what the remaining buyers can still add.
  std::vector<double> suffix_max;

  matching::Matching current;
  matching::Matching best;
  double current_welfare = 0.0;
  double best_welfare = -1.0;
  std::uint64_t nodes = 0;

  explicit Search(const market::SpectrumMarket& m)
      : market(m),
        current(m.num_channels(), m.num_buyers()),
        best(m.num_channels(), m.num_buyers()) {
    const int N = market.num_buyers();
    order.resize(static_cast<std::size_t>(N));
    std::iota(order.begin(), order.end(), 0);
    auto best_utility = [&](BuyerId j) {
      double top = 0.0;
      for (ChannelId i = 0; i < market.num_channels(); ++i)
        top = std::max(top, market.utility(i, j));
      return top;
    };
    std::stable_sort(order.begin(), order.end(), [&](BuyerId a, BuyerId b) {
      return best_utility(a) > best_utility(b);
    });
    suffix_max.assign(static_cast<std::size_t>(N) + 1, 0.0);
    for (int k = N - 1; k >= 0; --k)
      suffix_max[static_cast<std::size_t>(k)] =
          suffix_max[static_cast<std::size_t>(k) + 1] +
          best_utility(order[static_cast<std::size_t>(k)]);
  }

  void run(std::size_t depth) {
    ++nodes;
    if (depth == order.size()) {
      if (current_welfare > best_welfare) {
        best_welfare = current_welfare;
        best = current;
      }
      return;
    }
    if (current_welfare + suffix_max[depth] <= best_welfare) return;  // prune

    const BuyerId j = order[depth];
    // Try channels in descending utility for buyer j, then "unmatched".
    for (ChannelId i : market.buyer_preference_order(j)) {
      if (!market.graph(i).is_compatible(j, current.members_of(i))) continue;
      current.match(j, i);
      current_welfare += market.utility(i, j);
      run(depth + 1);
      current_welfare -= market.utility(i, j);
      current.unmatch(j);
    }
    run(depth + 1);  // leave j unmatched
  }
};

}  // namespace

OptimalResult solve_optimal(const market::SpectrumMarket& market) {
  Search search(market);
  search.run(0);
  SPECMATCH_CHECK(search.best_welfare >= 0.0);
  OptimalResult result;
  result.matching = search.best;
  result.welfare = search.best_welfare;
  result.nodes_explored = search.nodes;
  result.matching.check_consistent();
  return result;
}

OptimalResult solve_optimal_exhaustive(const market::SpectrumMarket& market) {
  const int M = market.num_channels();
  const int N = market.num_buyers();
  SPECMATCH_CHECK_MSG(
      N <= 12, "exhaustive solver is for tiny cross-check instances");

  // assignment[j] in [-1, M): channel of buyer j or unmatched.
  std::vector<int> assignment(static_cast<std::size_t>(N), -1);
  OptimalResult result;
  result.matching = matching::Matching(M, N);
  result.welfare = 0.0;

  while (true) {
    ++result.nodes_explored;
    // Evaluate the current assignment if feasible.
    double welfare = 0.0;
    bool feasible = true;
    for (BuyerId a = 0; a < N && feasible; ++a) {
      const int ia = assignment[static_cast<std::size_t>(a)];
      if (ia < 0) continue;
      if (!market.admissible(ia, a)) {
        feasible = false;
        break;
      }
      welfare += market.utility(ia, a);
      for (BuyerId b = a + 1; b < N && feasible; ++b) {
        if (assignment[static_cast<std::size_t>(b)] == ia &&
            market.interferes(ia, a, b))
          feasible = false;
      }
    }
    if (feasible && welfare > result.welfare) {
      result.welfare = welfare;
      matching::Matching m(M, N);
      for (BuyerId j = 0; j < N; ++j)
        if (assignment[static_cast<std::size_t>(j)] >= 0)
          m.match(j, assignment[static_cast<std::size_t>(j)]);
      result.matching = std::move(m);
    }
    // Next assignment in mixed-radix order.
    int pos = 0;
    while (pos < N) {
      if (++assignment[static_cast<std::size_t>(pos)] < M) break;
      assignment[static_cast<std::size_t>(pos)] = -1;
      ++pos;
    }
    if (pos == N) break;
  }
  return result;
}

}  // namespace specmatch::optimal
