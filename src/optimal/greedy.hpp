// Centralised greedy baseline: scan all (channel, buyer) pairs in descending
// price order and assign whenever feasible. A classic spectrum-auction
// allocation heuristic; serves as a non-strategic upper-mid baseline between
// random assignment and the exact optimum.
#pragma once

#include "matching/matching.hpp"

namespace specmatch::optimal {

matching::Matching solve_greedy(const market::SpectrumMarket& market);

}  // namespace specmatch::optimal
