// The centralised optimal matching (§II-B): maximise social welfare subject
// to one-channel-per-buyer and per-channel interference constraints. This is
// the NP-hard benchmark of eq. (1)-(4); the paper derives it by brute force
// on small markets, we use depth-first branch & bound with an admissible
// remaining-max bound (identical answers, much faster) plus a plain
// exhaustive enumerator used to cross-check the solver in tests.
#pragma once

#include <cstdint>

#include "matching/matching.hpp"

namespace specmatch::optimal {

struct OptimalResult {
  matching::Matching matching;
  double welfare = 0.0;
  std::uint64_t nodes_explored = 0;
};

/// Exact optimum via branch & bound. Exponential worst case — intended for
/// paper-scale instances (M <= ~8, N <= ~16, as in Fig. 6).
OptimalResult solve_optimal(const market::SpectrumMarket& market);

/// Exact optimum by enumerating all (M+1)^N assignments. Tiny inputs only.
OptimalResult solve_optimal_exhaustive(const market::SpectrumMarket& market);

}  // namespace specmatch::optimal
