// Random serial dictatorship baseline: buyers arrive in a random order and
// each grabs her best still-feasible channel. Lower bound for the welfare
// comparisons — any sensible mechanism should beat it.
#pragma once

#include "common/rng.hpp"
#include "matching/matching.hpp"

namespace specmatch::optimal {

matching::Matching solve_random_serial(const market::SpectrumMarket& market,
                                       Rng& rng);

}  // namespace specmatch::optimal
