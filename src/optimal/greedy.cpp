#include "optimal/greedy.hpp"

#include <algorithm>
#include <vector>

namespace specmatch::optimal {

matching::Matching solve_greedy(const market::SpectrumMarket& market) {
  struct Pair {
    ChannelId channel;
    BuyerId buyer;
    double price;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(market.num_channels()) *
                static_cast<std::size_t>(market.num_buyers()));
  for (ChannelId i = 0; i < market.num_channels(); ++i)
    for (BuyerId j = 0; j < market.num_buyers(); ++j)
      if (market.admissible(i, j))
        pairs.push_back({i, j, market.utility(i, j)});
  std::stable_sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.price > b.price;
  });

  matching::Matching result(market.num_channels(), market.num_buyers());
  for (const Pair& p : pairs) {
    if (result.is_matched(p.buyer)) continue;
    if (!market.graph(p.channel).is_compatible(p.buyer,
                                               result.members_of(p.channel)))
      continue;
    result.match(p.buyer, p.channel);
  }
  return result;
}

}  // namespace specmatch::optimal
