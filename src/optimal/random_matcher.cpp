#include "optimal/random_matcher.hpp"

#include <numeric>
#include <vector>

namespace specmatch::optimal {

matching::Matching solve_random_serial(const market::SpectrumMarket& market,
                                       Rng& rng) {
  std::vector<BuyerId> order(static_cast<std::size_t>(market.num_buyers()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  matching::Matching result(market.num_channels(), market.num_buyers());
  for (BuyerId j : order) {
    for (ChannelId i : market.buyer_preference_order(j)) {
      if (market.graph(i).is_compatible(j, result.members_of(i))) {
        result.match(j, i);
        break;
      }
    }
  }
  return result;
}

}  // namespace specmatch::optimal
