#include "optimal/bundle_exact.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace specmatch::optimal {

namespace {

struct Search {
  const market::SpectrumMarket& market;
  const valuation::BundleValuation& valuation;

  /// Virtual buyers grouped by parent.
  std::vector<std::vector<BuyerId>> parents;
  /// Admissible per-parent upper bound and its suffix sums.
  std::vector<double> parent_bound;
  std::vector<double> suffix_bound;

  matching::Matching current;
  matching::Matching best;
  double best_welfare = -1.0;
  double value_so_far = 0.0;
  std::uint64_t nodes = 0;

  explicit Search(const market::SpectrumMarket& m,
                  const valuation::BundleValuation& v)
      : market(m),
        valuation(v),
        current(m.num_channels(), m.num_buyers()),
        best(m.num_channels(), m.num_buyers()) {
    int max_parent = 0;
    for (BuyerId j = 0; j < market.num_buyers(); ++j)
      max_parent = std::max(max_parent, market.buyer_parent(j));
    parents.resize(static_cast<std::size_t>(max_parent) + 1);
    for (BuyerId j = 0; j < market.num_buyers(); ++j)
      parents[static_cast<std::size_t>(market.buyer_parent(j))].push_back(j);

    // U_p = max over k of (top-k per-dummy max unit values) * factor(k):
    // no completion of parent p can beat it, with or without interference.
    parent_bound.reserve(parents.size());
    for (const auto& dummies : parents) {
      std::vector<double> max_units;
      for (BuyerId j : dummies) {
        double top = 0.0;
        for (ChannelId i = 0; i < market.num_channels(); ++i)
          top = std::max(top, market.utility(i, j));
        max_units.push_back(top);
      }
      std::sort(max_units.begin(), max_units.end(), std::greater<>());
      double bound = 0.0;
      double running = 0.0;
      for (std::size_t k = 0; k < max_units.size(); ++k) {
        running += max_units[k];
        bound = std::max(bound,
                         running * valuation.factor(static_cast<int>(k) + 1));
      }
      parent_bound.push_back(bound);
    }
    suffix_bound.assign(parents.size() + 1, 0.0);
    for (std::size_t p = parents.size(); p-- > 0;)
      suffix_bound[p] = suffix_bound[p + 1] + parent_bound[p];
  }

  void solve_parent(std::size_t p) {
    ++nodes;
    if (p == parents.size()) {
      if (value_so_far > best_welfare) {
        best_welfare = value_so_far;
        best = current;
      }
      return;
    }
    if (value_so_far + suffix_bound[p] <= best_welfare) return;  // prune
    assign_dummy(p, 0, 0.0, 0);
  }

  void assign_dummy(std::size_t p, std::size_t d, double unit_sum,
                    int bundle_size) {
    const auto& dummies = parents[p];
    if (d == dummies.size()) {
      const double bundle = unit_sum * valuation.factor(bundle_size);
      value_so_far += bundle;
      solve_parent(p + 1);
      value_so_far -= bundle;
      return;
    }
    const BuyerId j = dummies[d];
    for (ChannelId i : market.buyer_preference_order(j)) {
      if (!market.graph(i).is_compatible(j, current.members_of(i))) continue;
      current.match(j, i);
      assign_dummy(p, d + 1, unit_sum + market.utility(i, j),
                   bundle_size + 1);
      current.unmatch(j);
    }
    assign_dummy(p, d + 1, unit_sum, bundle_size);  // leave j unmatched
  }
};

}  // namespace

BundleOptimalResult solve_bundle_optimal(
    const market::SpectrumMarket& market,
    const valuation::BundleValuation& valuation) {
  Search search(market, valuation);
  search.solve_parent(0);
  SPECMATCH_CHECK(search.best_welfare >= 0.0);
  BundleOptimalResult result;
  result.matching = search.best;
  result.welfare = search.best_welfare;
  result.nodes_explored = search.nodes;
  result.matching.check_consistent();
  return result;
}

}  // namespace specmatch::optimal
