#include "valuation/bundle.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "market/preferences.hpp"

namespace specmatch::valuation {

double BundleValuation::factor(int bundle_size) const {
  SPECMATCH_CHECK(bundle_size >= 0);
  if (bundle_size == 0) return 0.0;
  return std::max(0.0, 1.0 + gamma * static_cast<double>(bundle_size - 1));
}

double BundleValuation::value(std::span<const double> unit_values) const {
  double sum = 0.0;
  for (double v : unit_values) sum += v;
  return sum * factor(static_cast<int>(unit_values.size()));
}

double bundle_welfare(const market::SpectrumMarket& market,
                      const matching::Matching& matching,
                      const BundleValuation& valuation) {
  // Group the matched virtual buyers' realised unit values by parent.
  int max_parent = 0;
  for (BuyerId j = 0; j < market.num_buyers(); ++j)
    max_parent = std::max(max_parent, market.buyer_parent(j));
  std::vector<std::vector<double>> bundles(
      static_cast<std::size_t>(max_parent) + 1);

  for (BuyerId j = 0; j < market.num_buyers(); ++j) {
    const SellerId i = matching.seller_of(j);
    if (i == kUnmatched) continue;
    bundles[static_cast<std::size_t>(market.buyer_parent(j))].push_back(
        market::buyer_utility_in(market, j, i, matching.members_of(i)));
  }

  double welfare = 0.0;
  for (const auto& bundle : bundles) welfare += valuation.value(bundle);
  return welfare;
}

}  // namespace specmatch::valuation
