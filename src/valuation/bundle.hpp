// Bundle valuations for multi-channel buyers (footnote 1's future work).
//
// The paper assumes channels are independent goods: a parent buyer's value
// for her acquired channels is the plain sum of per-channel utilities, which
// is what dummy virtualisation (§II-A) silently encodes. This module models
// the cases the authors defer — complementary and substitute channels — via
// a per-extra-channel synergy factor:
//
//   v(S) = (sum of unit values) * (1 + gamma * (|S| - 1)),   |S| >= 1
//
// gamma > 0: complements (a bundle is worth more than its parts — e.g.
//            channel bonding for contiguous wideband use);
// gamma < 0: substitutes (diminishing returns — extra channels mostly add
//            redundancy). The factor is floored at 0 so value never goes
//            negative.
//
// bench/ablation_bundles quantifies how much welfare the paper's additive
// matching loses against a bundle-aware optimum as gamma moves away from 0.
#pragma once

#include <span>
#include <string_view>

#include "market/market.hpp"
#include "matching/matching.hpp"

namespace specmatch::valuation {

struct BundleValuation {
  /// Synergy per additional channel; 0 reproduces the paper's additive model.
  double gamma = 0.0;

  /// Value of a bundle given the unit values of its channels.
  double value(std::span<const double> unit_values) const;

  /// Multiplier applied to a k-channel bundle's unit-value sum.
  double factor(int bundle_size) const;
};

/// Social welfare of `matching` under bundle valuation: virtual buyers are
/// grouped by parent (market.buyer_parent) and each parent's acquired
/// channels are valued as one bundle. Interference still voids a channel's
/// contribution (peer effect) — a voided channel contributes a unit value of
/// zero but still counts toward the bundle size (the buyer *holds* it).
double bundle_welfare(const market::SpectrumMarket& market,
                      const matching::Matching& matching,
                      const BundleValuation& valuation);

}  // namespace specmatch::valuation
