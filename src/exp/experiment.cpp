#include "exp/experiment.hpp"

#include <cstdlib>
#include <fstream>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace specmatch::exp {

namespace {

/// SPECMATCH_METRICS_OUT: when metrics are enabled and this names a path,
/// run_trials appends one JSON object per trial (JSON-lines, so many
/// harness invocations can share the file). Schema: {"base_seed": s,
/// "trial": t, "metrics": {name: value, ...}}.
void dump_trial_metrics(std::uint64_t base_seed,
                        const std::vector<Metrics>& results) {
  const char* path = std::getenv("SPECMATCH_METRICS_OUT");
  if (path == nullptr || path[0] == '\0' || !metrics::enabled()) return;
  std::ofstream out(path, std::ios::app);
  SPECMATCH_CHECK_MSG(out.good(), "cannot open SPECMATCH_METRICS_OUT path '"
                                      << path << "' for appending");
  for (std::size_t t = 0; t < results.size(); ++t) {
    out << "{\"base_seed\": " << base_seed << ", \"trial\": " << t
        << ", \"metrics\": {";
    bool first = true;
    for (const auto& [name, value] : results[t]) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    }
    out << "}}\n";
  }
  out.flush();
  SPECMATCH_CHECK_MSG(out.good(),
                      "failed writing SPECMATCH_METRICS_OUT path '" << path
                                                                    << "'");
}

}  // namespace

void TrialAggregator::add(const Metrics& metrics) {
  ++trials_;
  for (const auto& [name, value] : metrics) summaries_[name].add(value);
}

std::vector<std::string> TrialAggregator::metric_names() const {
  std::vector<std::string> names;
  names.reserve(summaries_.size());
  for (const auto& [name, summary] : summaries_) names.push_back(name);
  return names;
}

bool TrialAggregator::has(const std::string& name) const {
  return summaries_.contains(name);
}

const Summary& TrialAggregator::summary(const std::string& name) const {
  const auto it = summaries_.find(name);
  SPECMATCH_CHECK_MSG(it != summaries_.end(), "unknown metric " << name);
  return it->second;
}

double TrialAggregator::mean(const std::string& name) const {
  return summary(name).mean();
}

double TrialAggregator::stderror(const std::string& name) const {
  return summary(name).stderror();
}

TrialAggregator run_trials(int trials, std::uint64_t base_seed,
                           const std::function<Metrics(Rng&)>& trial) {
  SPECMATCH_CHECK(trials > 0);
  // Trials already draw from independent per-trial streams, so they run
  // concurrently on the engine pool; folding the buffered metrics in trial
  // order afterwards keeps every mean/stderr identical to the serial run.
  std::vector<Metrics> results(static_cast<std::size_t>(trials));
  parallel_for(0, static_cast<std::size_t>(trials), [&](std::size_t t) {
    trace::ScopedSpan span("exp.trial", static_cast<std::int64_t>(t));
    Rng rng(base_seed + static_cast<std::uint64_t>(t) * 0x9e3779b9ULL);
    results[t] = trial(rng);
  });
  metrics::count("exp.trials", trials);
  dump_trial_metrics(base_seed, results);
  TrialAggregator aggregator;
  for (const Metrics& metrics : results) aggregator.add(metrics);
  return aggregator;
}

Metrics two_stage_metrics(const market::SpectrumMarket& market,
                          const matching::TwoStageConfig& config) {
  const auto result = matching::run_two_stage(market, config);
  Metrics metrics;
  metrics["welfare_stage1"] = result.welfare_stage1;
  metrics["welfare_phase1"] = result.welfare_phase1;
  metrics["welfare_final"] = result.welfare_final;
  metrics["rounds_stage1"] = static_cast<double>(result.stage1.rounds);
  metrics["rounds_phase1"] = static_cast<double>(result.stage2.phase1_rounds);
  metrics["rounds_phase2"] = static_cast<double>(result.stage2.phase2_rounds);
  metrics["matched_buyers"] =
      static_cast<double>(result.final_matching().num_matched());
  metrics["proposals"] = static_cast<double>(result.stage1.total_proposals);
  metrics["transfers"] =
      static_cast<double>(result.stage2.transfers_accepted);
  metrics["invitations_accepted"] =
      static_cast<double>(result.stage2.invitations_accepted);
  return metrics;
}

}  // namespace specmatch::exp
