// Replicated-trial experiment harness shared by the bench/ binaries.
//
// Each figure point is an average over independently seeded trials; a trial
// returns named metrics, the aggregator folds them into mean ± stderr, and
// the harness prints one table per figure panel in the same shape the paper
// reports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "matching/two_stage.hpp"

namespace specmatch::exp {

/// Named metrics produced by one trial.
using Metrics = std::map<std::string, double>;

class TrialAggregator {
 public:
  void add(const Metrics& metrics);

  std::size_t num_trials() const { return trials_; }
  /// Names in lexicographic order.
  std::vector<std::string> metric_names() const;
  bool has(const std::string& name) const;
  double mean(const std::string& name) const;
  double stderror(const std::string& name) const;
  const Summary& summary(const std::string& name) const;

 private:
  std::size_t trials_ = 0;
  std::map<std::string, Summary> summaries_;
};

/// Runs `trials` independent trials, each with a deterministically derived
/// Rng (base_seed + trial index), and aggregates the metrics in trial order
/// (so results are identical at any SPECMATCH_THREADS). Trials execute
/// concurrently on the engine thread pool: `trial` must be safe to invoke
/// from several threads at once (the standard shape — build a market from
/// the passed Rng, run, return metrics — already is).
TrialAggregator run_trials(
    int trials, std::uint64_t base_seed,
    const std::function<Metrics(Rng&)>& trial);

/// Standard metric bundle for the proposed algorithm on one market:
/// cumulative welfare after Stage I / Phase 1 / Phase 2 (Fig. 7), per-stage
/// rounds (Fig. 8), matched-buyer count, and message-free algorithm stats.
Metrics two_stage_metrics(const market::SpectrumMarket& market,
                          const matching::TwoStageConfig& config = {});

}  // namespace specmatch::exp
