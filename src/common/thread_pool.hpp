// A small fixed-size thread pool with a deterministic parallel_for.
//
// ThreadPool(n) spawns n - 1 workers; the calling thread always participates
// in parallel_for, so n == 1 means zero workers and every entry point
// degenerates to the exact serial loop (the engine's SPECMATCH_THREADS=1
// escape hatch). parallel_for distributes single indices over the workers;
// callers are expected to write results into per-index slots, which is what
// makes the parallel engine bit-for-bit deterministic regardless of thread
// count. Exceptions thrown by the body are captured per participant and the
// first one (in participant order) is rethrown on the calling thread.
//
// Nested use is safe by construction: a parallel_for issued from inside a
// pool worker runs inline on that worker (no new tasks, no deadlock), and
// submit() from inside a task just enqueues.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/metrics.hpp"

namespace specmatch {

class ThreadPool {
 public:
  /// A pool presenting `num_threads` lanes of execution: the caller plus
  /// num_threads - 1 workers. Requires num_threads >= 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes including the calling thread (constructor argument).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Enqueues `task` for a worker. On a 1-lane pool the task runs inline
  /// before submit returns. Tasks may themselves call submit.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  /// Calls fn(i) for every i in [begin, end). Blocks until all calls have
  /// returned, then rethrows the first captured exception, if any. Runs
  /// serially (in ascending index order, on the calling thread) when the
  /// pool has one lane, the range has one index, or the caller is itself a
  /// pool worker.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    if (workers_.empty() || end - begin == 1 || t_in_worker) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    parallel_for_impl(begin, end,
                      [&fn](std::size_t /*lane*/, std::size_t i) { fn(i); });
  }

  /// parallel_for variant whose body also receives the executing lane index
  /// (0 = the calling thread): fn(lane, i). Lanes let callers hand each
  /// participant its own scratch slot (e.g. the MatchWorkspace per-lane MWIS
  /// scratch) without sharing or locking. Which lane runs which index is
  /// scheduling-dependent — results stay deterministic only if the scratch
  /// never influences outputs (it must be fully reinitialised per use).
  /// Serial fallbacks run everything as lane 0.
  template <typename Fn>
  void parallel_for_lanes(std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    if (workers_.empty() || end - begin == 1 || t_in_worker) {
      for (std::size_t i = begin; i < end; ++i) fn(std::size_t{0}, i);
      return;
    }
    parallel_for_impl(begin, end, std::forward<Fn>(fn));
  }

  /// The engine-wide pool, sized from SpecmatchConfig::global().num_threads.
  /// Recreated (workers joined and respawned) when the knob changed since
  /// the last call; do not change the knob while a run is in flight.
  static ThreadPool& global();

 private:
  /// Shared parallel branch of parallel_for / parallel_for_lanes: dispatches
  /// the work-stealing index loop across the caller (lane 0) and up to
  /// workers_.size() helpers, passing each body its lane. Callers have
  /// already handled the serial fallbacks.
  template <typename Fn>
  void parallel_for_impl(std::size_t begin, std::size_t end, Fn&& fn) {
    metrics::count("pool.parallel_for_dispatches");
    const std::size_t helpers = std::min(end - begin - 1, workers_.size());
    auto state = std::make_shared<ForState>(helpers + 1, begin, end);
    auto run_lane = [state, &fn](std::size_t lane) {
      try {
        while (true) {
          const std::size_t i =
              state->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= state->end) break;
          fn(lane, i);
        }
      } catch (...) {
        state->errors[lane] = std::current_exception();
      }
    };
    for (std::size_t h = 0; h < helpers; ++h) {
      submit([state, run_lane, h] {
        run_lane(h + 1);
        std::lock_guard<std::mutex> lock(state->mutex);
        ++state->finished;
        state->done.notify_all();
      });
    }
    run_lane(0);  // the caller is lane 0
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->done.wait(lock, [&] { return state->finished == helpers; });
    }
    for (const std::exception_ptr& error : state->errors)
      if (error) std::rethrow_exception(error);
  }

  struct ForState {
    ForState(std::size_t lanes, std::size_t begin, std::size_t range_end)
        : end(range_end), next(begin), errors(lanes) {}
    const std::size_t end;
    std::atomic<std::size_t> next;
    std::vector<std::exception_ptr> errors;  // one slot per lane
    std::mutex mutex;
    std::condition_variable done;
    std::size_t finished = 0;
  };

  void worker_loop();

  static thread_local bool t_in_worker;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Convenience: parallel_for on the engine-wide pool.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  ThreadPool::global().parallel_for(begin, end, std::forward<Fn>(fn));
}

/// Convenience: parallel_for_lanes on the engine-wide pool.
template <typename Fn>
void parallel_for_lanes(std::size_t begin, std::size_t end, Fn&& fn) {
  ThreadPool::global().parallel_for_lanes(begin, end, std::forward<Fn>(fn));
}

}  // namespace specmatch
