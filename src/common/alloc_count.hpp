// Heap-allocation counting hook behind SPECMATCH_COUNT_ALLOCS.
//
// When the knob is set (and only then), the replaced global operator new
// bumps a process-wide atomic counter on every heap allocation; the matching
// engine samples it around steady-state rounds to *prove* the MatchWorkspace
// zero-allocation guarantee (workspace_test, bench/large_market). With the
// knob unset the hook is a single relaxed load per allocation; the counter
// stays at zero and every `steady_allocs` result field reports -1
// (= not measured).
//
// The operator new/delete replacements live in alloc_count.cpp inside
// libspecmatch_common; like any strong definition in a static library they
// are linked into a binary only when something in that binary references a
// symbol from the TU (alloc_count::total() does), which every engine entry
// point does via the steady-state accounting.
#pragma once

#include <cstdint>

namespace specmatch::alloc_count {

/// True when SPECMATCH_COUNT_ALLOCS was set at process start (or overridden
/// via set_counting); only then does total() advance.
bool counting();

/// Test override for the knob (workspace_test flips it on regardless of the
/// environment). Takes effect for allocations made after the call.
void set_counting(bool on);

/// Number of heap allocations (operator new / new[] calls) observed since
/// process start while counting() was true. Monotone; diff two samples to
/// attribute a region.
std::int64_t total();

}  // namespace specmatch::alloc_count
