// AVX2 kernel tier (256-bit). Built with -mavx2 on x86 (see src/CMakeLists);
// the table is only handed out when CPUID confirms the CPU actually runs
// AVX2, so a binary built here still dispatches correctly on an SSE2-only
// machine. Popcount uses the Mula nibble-LUT (PSHUFB lookup + PSADBW
// accumulate); the emptiness/subset/scan kernels lean on VPTEST early exits.
// All operations are integer/bitwise, so results are bit-identical to the
// scalar reference by construction.
#include "common/simd.hpp"

#include <bit>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)
#include <immintrin.h>

namespace specmatch::simd {
namespace {

inline __m256i load4(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store4(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Mula nibble-LUT popcount of one 256-bit lane, as four per-64-bit-word
/// byte sums packed into an epi64 vector (each lane <= 64, so summing many
/// vectors into an epi64 accumulator cannot overflow for any realistic n).
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::size_t horizontal_sum_epi64(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::size_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

std::size_t avx2_popcount(const std::uint64_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_epi64(acc, popcount_epi64(load4(a + i)));
  std::size_t total = horizontal_sum_epi64(acc);
  for (; i < n; ++i) total += std::popcount(a[i]);
  return total;
}

std::size_t avx2_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_epi64(
        acc, popcount_epi64(_mm256_and_si256(load4(a + i), load4(b + i))));
  std::size_t total = horizontal_sum_epi64(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

std::size_t avx2_andnot_popcount(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  // VPANDN computes ~x & y: mask first.
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_epi64(
        acc, popcount_epi64(_mm256_andnot_si256(load4(b + i), load4(a + i))));
  std::size_t total = horizontal_sum_epi64(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & ~b[i]);
  return total;
}

void avx2_store_and(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    store4(dst + i, _mm256_and_si256(load4(a + i), load4(b + i)));
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void avx2_store_or(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    store4(dst + i, _mm256_or_si256(load4(a + i), load4(b + i)));
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void avx2_store_andnot(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    store4(dst + i, _mm256_andnot_si256(load4(b + i), load4(a + i)));
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

bool avx2_intersects(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  // VPTEST a,b sets ZF iff (a & b) == 0 — exactly the intersect test.
  for (; i + 4 <= n; i += 4)
    if (!_mm256_testz_si256(load4(a + i), load4(b + i))) return true;
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

bool avx2_is_subset(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  std::size_t i = 0;
  // VPTEST also sets CF iff (~a & b) == 0; testc(b, a) == 1 <=> a ⊆ b.
  for (; i + 4 <= n; i += 4)
    if (!_mm256_testc_si256(load4(b + i), load4(a + i))) return false;
  for (; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

bool avx2_any(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = load4(a + i);
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < n; ++i)
    if (a[i] != 0) return true;
  return false;
}

std::size_t avx2_find_nonzero(const std::uint64_t* a, std::size_t begin,
                              std::size_t n) {
  std::size_t i = begin;
  for (; i + 4 <= n; i += 4) {
    __m256i v = load4(a + i);
    if (!_mm256_testz_si256(v, v)) break;
  }
  for (; i < n; ++i)
    if (a[i] != 0) return i;
  return n;
}

std::size_t avx2_find_nonzero_and(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t begin,
                                  std::size_t n) {
  std::size_t i = begin;
  for (; i + 4 <= n; i += 4)
    if (!_mm256_testz_si256(load4(a + i), load4(b + i))) break;
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return i;
  return n;
}

constexpr Kernels kAvx2Kernels = {
    avx2_popcount, avx2_and_popcount, avx2_andnot_popcount,
    avx2_store_and, avx2_store_or, avx2_store_andnot,
    avx2_intersects, avx2_is_subset, avx2_any,
    avx2_find_nonzero, avx2_find_nonzero_and,
    Tier::kAvx2,
};

}  // namespace

namespace detail {
const Kernels* avx2_kernels_or_null() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}
}  // namespace detail

}  // namespace specmatch::simd

#else  // non-x86 build (or AVX2 disabled): tier absent, dispatch skips it.

namespace specmatch::simd::detail {
const Kernels* avx2_kernels_or_null() { return nullptr; }
}  // namespace specmatch::simd::detail

#endif
