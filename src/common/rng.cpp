#include "common/rng.hpp"

#include <cmath>

namespace specmatch {

namespace {

constexpr double kPi = 3.14159265358979323846;

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SPECMATCH_CHECK_MSG(lo <= hi, "empty interval [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SPECMATCH_CHECK_MSG(lo <= hi, "empty range [" << lo << ", " << hi << "]");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal(double mean, double stddev) {
  SPECMATCH_CHECK_MSG(stddev >= 0.0, "negative stddev " << stddev);
  // Box-Muller; u1 is nudged away from 0 so log() stays finite.
  const double u1 = uniform() + 0x1.0p-60;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * kPi * u2);
}

Rng Rng::fork(std::uint64_t stream) {
  // Mix the stream index with fresh output so forks are independent.
  SplitMix64 sm(next_u64() ^ (0xa0761d6478bd642fULL * (stream + 1)));
  return Rng(sm.next());
}

}  // namespace specmatch
