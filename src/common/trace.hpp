// Scoped-span tracing: wall-clock timing of named regions (a Stage-I round,
// a Phase-1 snapshot solve, one trial) into a bounded in-memory buffer.
//
// Gated on SPECMATCH_TRACE exactly like the metrics layer is on
// SPECMATCH_METRICS: when off, constructing a ScopedSpan is one relaxed load
// and no clock is read. Spans record {name, start, duration, lane} with
// nanosecond resolution relative to the first span of the process; the
// buffer is mutex-protected (spans end at per-round / per-phase rates) and
// capped so a runaway loop cannot exhaust memory — overflow is counted, not
// silently dropped.
//
// Export: write_chrome_json emits the chrome://tracing / Perfetto "trace
// event" array format, so a dump opens directly in a trace viewer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace specmatch::trace {

/// Global on/off switch (initialised from SPECMATCH_TRACE).
bool enabled();
/// Overrides the switch at runtime (tests, benches). Flip it between runs.
void set_enabled(bool on);

/// One completed span. Times are nanoseconds on the steady clock, relative
/// to the tracer's epoch (the first event after process start or clear()).
struct Span {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  int lane = 0;        ///< small per-thread id (0 = first recording thread)
  std::int64_t arg = 0;  ///< optional payload (round number, set size, ...)
};

class Tracer {
 public:
  /// Buffer cap: spans recorded past this are dropped (and counted).
  static constexpr std::size_t kMaxSpans = 1 << 20;

  static Tracer& global();

  void record(Span span);
  std::vector<Span> snapshot() const;
  std::size_t dropped() const;
  void clear();

  /// Chrome trace-event JSON ("X" complete events, microsecond timestamps);
  /// loads in chrome://tracing or ui.perfetto.dev.
  void write_chrome_json(std::ostream& out) const;

 private:
  struct Impl;
  Tracer();
  Impl* impl_;
};

/// RAII span: times its scope and records into Tracer::global() when tracing
/// is enabled. The name must outlive the scope (string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::int64_t arg = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Updates the span payload before it is recorded (e.g. a round count
  /// known only at scope exit).
  void set_arg(std::int64_t arg) { arg_ = arg; }

  /// Records the span now (for phases that end mid-scope); the destructor
  /// then does nothing. Idempotent.
  void end();

 private:
  std::string_view name_;
  std::int64_t start_ns_ = -1;  ///< -1 = tracing was off at construction
  std::int64_t arg_ = 0;
};

}  // namespace specmatch::trace
