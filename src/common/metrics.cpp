#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <ostream>

namespace specmatch::metrics {

namespace {

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_flag("SPECMATCH_METRICS")};
  return flag;
}

/// Spinlock guard for the histogram's tiny critical section (a handful of
/// scalar updates — shorter than a mutex park/unpark would be).
class FlagLock {
 public:
  explicit FlagLock(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~FlagLock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& flag_;
};

std::size_t bucket_of(double value) {
  if (!(value >= 1.0)) return 0;  // also routes NaN to bucket 0
  const int exp = std::ilogb(value) + 1;
  return std::min<std::size_t>(static_cast<std::size_t>(exp),
                               Histogram::kNumBuckets - 1);
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void Histogram::record(double value) {
  FlagLock lock(lock_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

Histogram::Summary Histogram::summary() const {
  FlagLock lock(lock_);
  Summary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.buckets.assign(buckets_, buckets_ + kNumBuckets);
  return s;
}

void Histogram::reset() {
  FlagLock lock(lock_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  for (std::uint64_t& b : buckets_) b = 0;
}

double Histogram::Summary::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Cumulative mass the quantile must cover, in (0, count].
  const double target =
      std::max(q * static_cast<double>(count), std::nextafter(0.0, 1.0));
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket == 0.0 || cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    // Bucket b spans [2^(b-1), 2^b), with bucket 0 pooling values < 1.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(b));
    const double frac = (target - cum) / in_bucket;
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;  // unreachable unless buckets disagree with count
}

std::int64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

// std::map is node-based, so instrument addresses survive later insertions —
// that is what makes the returned references stable for the process.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::global() {
  // Leaked intentionally: instruments may be touched from worker threads
  // during static destruction otherwise.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return it->second;
  return impl_->counters[std::string(name)];
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return it->second;
  return impl_->gauges[std::string(name)];
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return it->second;
  return impl_->histograms[std::string(name)];
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Snapshot s;
  s.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters)
    s.counters.emplace_back(name, counter.value());
  s.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges)
    s.gauges.emplace_back(name, gauge.value());
  s.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms)
    s.histograms.emplace_back(name, histogram.summary());
  return s;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, counter] : impl_->counters) counter.reset();
  for (auto& [name, gauge] : impl_->gauges) gauge.reset();
  for (auto& [name, histogram] : impl_->histograms) histogram.reset();
}

void write_json(std::ostream& out, const Snapshot& snapshot) {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i)
    out << (i ? ", " : "") << "\"" << snapshot.counters[i].first
        << "\": " << snapshot.counters[i].second;
  out << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i)
    out << (i ? ", " : "") << "\"" << snapshot.gauges[i].first
        << "\": " << snapshot.gauges[i].second;
  out << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, s] = snapshot.histograms[i];
    out << (i ? ",\n    " : "\n    ") << "\"" << name << "\": {\"count\": "
        << s.count << ", \"sum\": " << s.sum << ", \"min\": " << s.min
        << ", \"max\": " << s.max << ", \"mean\": " << s.mean()
        << ", \"p50\": " << s.p50() << ", \"p90\": " << s.p90()
        << ", \"p99\": " << s.p99() << ", \"buckets\": [";
    for (std::size_t b = 0; b < s.buckets.size(); ++b)
      out << (b ? "," : "") << s.buckets[b];
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void write_csv(std::ostream& out, const Snapshot& snapshot) {
  out << "kind,name,count,sum,min,max,p50,p90,p99\n";
  for (const auto& [name, value] : snapshot.counters)
    out << "counter," << name << "," << value << ",,,,,,\n";
  for (const auto& [name, value] : snapshot.gauges)
    out << "gauge," << name << "," << value << ",,,,,,\n";
  for (const auto& [name, s] : snapshot.histograms)
    out << "histogram," << name << "," << s.count << "," << s.sum << ","
        << s.min << "," << s.max << "," << s.p50() << "," << s.p90() << ","
        << s.p99() << "\n";
}

}  // namespace specmatch::metrics
