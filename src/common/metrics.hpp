// Lightweight, zero-dependency metrics: named counters, gauges, and
// histograms behind a process-wide thread-safe registry.
//
// The whole layer is gated on one relaxed atomic flag, initialised from the
// SPECMATCH_METRICS environment variable (non-empty and not "0" enables it).
// When disabled, every recording entry point is a single relaxed load plus a
// predicted-not-taken branch — the algorithm hot paths stay effectively
// free. When enabled, instruments are created on first use and live for the
// process lifetime, so references handed out by the registry stay valid; hot
// loops (e.g. the MWIS pick loop) accumulate locally and flush once per call.
//
// Recording never affects algorithm results: counters feed only the JSON /
// CSV snapshots exported by the bench harness and the experiment runner.
// All instruments are safe to record from any thread, including the engine
// thread pool's workers; counter totals are exact under concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace specmatch::metrics {

/// Global on/off switch (initialised from SPECMATCH_METRICS).
bool enabled();
/// Overrides the switch at runtime (tests, benches). Not synchronised with
/// in-flight recording; flip it between runs.
void set_enabled(bool on);

/// Monotonic counter. Totals are exact under concurrent add().
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary: count / sum / min / max plus power-of-two buckets
/// (bucket b counts values in [2^(b-1), 2^b), bucket 0 counts values < 1).
/// record() takes a mutex — fine for the per-round / per-solve rates the
/// engine records at; don't put it on a per-edge path.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 24;

  void record(double value);

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  // kNumBuckets entries

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Quantile estimate from the power-of-two buckets, q in [0, 1]: the
    /// bucket containing cumulative mass q * count is located and the value
    /// is linearly interpolated across its [2^(b-1), 2^b) span, then clamped
    /// to [min, max]. Resolution is therefore one octave (coarser below 1.0,
    /// where bucket 0 pools everything); exact when all samples share one
    /// bucket and min/max pin it. 0 when empty. The latency SLO exports
    /// (p50/p90/p99) in the JSON/CSV snapshots come from here.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
  };
  Summary summary() const;
  void reset();

 private:
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;  // tiny critical section
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kNumBuckets] = {};
};

/// Point-in-time copy of every registered instrument, names sorted.
struct Snapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Summary>> histograms;

  /// Counter value by name; 0 when absent.
  std::int64_t counter(std::string_view name) const;
};

/// The process-wide instrument registry. Instruments are identified by name
/// ("stage1.rounds"); the first lookup creates them. Returned references are
/// stable for the process lifetime.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot snapshot() const;
  /// Zeroes every instrument (registration is kept). Tests / per-run scoping.
  void reset_all();

 private:
  struct Impl;
  Registry();
  Impl* impl_;
};

/// Convenience recorders: no-ops (one relaxed load) when metrics are off.
inline void count(std::string_view name, std::int64_t delta = 1) {
  if (enabled()) Registry::global().counter(name).add(delta);
}
inline void gauge_set(std::string_view name, double value) {
  if (enabled()) Registry::global().gauge(name).set(value);
}
inline void observe(std::string_view name, double value) {
  if (enabled()) Registry::global().histogram(name).record(value);
}

/// Serialises a snapshot as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, mean, buckets}}}. Names are emitted verbatim (instrument names
/// use [a-z0-9._] by convention).
void write_json(std::ostream& out, const Snapshot& snapshot);
/// CSV rows: kind,name,count,sum,min,max (counters/gauges fill count only).
void write_csv(std::ostream& out, const Snapshot& snapshot);

}  // namespace specmatch::metrics
