// Lightweight precondition / invariant checking.
//
// SPECMATCH_CHECK is always on (cheap comparisons guarding API misuse);
// SPECMATCH_DCHECK compiles out in release builds and is used on hot paths.
// Violations throw specmatch::CheckError so tests can assert on misuse and
// long-running simulations fail loudly instead of silently corrupting state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace specmatch {

/// Thrown when a SPECMATCH_CHECK precondition or invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace specmatch

#define SPECMATCH_CHECK(expr)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::specmatch::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define SPECMATCH_CHECK_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream specmatch_check_os;                               \
      specmatch_check_os << msg;                                           \
      ::specmatch::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                        specmatch_check_os.str());         \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define SPECMATCH_DCHECK(expr) \
  do {                         \
  } while (false)
#else
#define SPECMATCH_DCHECK(expr) SPECMATCH_CHECK(expr)
#endif
