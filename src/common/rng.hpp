// Deterministic random-number generation.
//
// All experiment randomness flows through Rng (xoshiro256** seeded via
// SplitMix64), so every simulation point in EXPERIMENTS.md is reproducible
// from its stated seed, independent of the standard library implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace specmatch {

/// SplitMix64 — used to expand a single seed into xoshiro state, and handy as
/// a tiny standalone generator for hashing-style use.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator with convenience samplers.
///
/// Satisfies UniformRandomBitGenerator, so it also works with <random>
/// distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Normal deviate via Box-Muller (no state caching: one draw per call).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A derived generator with an independent stream (for per-trial seeding).
  Rng fork(std::uint64_t stream);

 private:
  std::uint64_t s_[4];
};

}  // namespace specmatch
