// Descriptive statistics and rank correlation.
//
// Spearman's rank correlation coefficient (SRCC) quantifies the similarity of
// buyers' utility vectors in Section V of the paper; Summary powers the
// mean ± stderr aggregation of every replicated experiment point.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace specmatch {

/// Streaming accumulator for mean / variance / extrema (Welford's method).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderror() const;
  /// Half-width of a normal-approximation confidence interval around the
  /// mean (default 95%: 1.96 sigma/sqrt(n)); 0 for fewer than two samples.
  double confidence_halfwidth(double z = 1.96) const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fractional ranks (ties get the average of the ranks they span), 1-based.
std::vector<double> fractional_ranks(std::span<const double> values);

/// Spearman's rank correlation coefficient between two equal-length vectors.
/// Computed as the Pearson correlation of fractional ranks, so ties are
/// handled correctly. Returns 0 for vectors shorter than 2 or with zero rank
/// variance.
double spearman(std::span<const double> a, std::span<const double> b);

/// Mean pairwise SRCC over the rows of a matrix (the paper's "price
/// similarity" measure, §V-A). `rows` is row-major with `cols` columns.
double mean_pairwise_spearman(std::span<const double> rows, std::size_t cols);

/// Jain's fairness index (sum x)^2 / (n * sum x^2): 1 when all values are
/// equal, 1/n when a single participant takes everything. Standard DSA
/// fairness measure over buyers' realised utilities. Returns 1 for empty or
/// all-zero input.
double jain_fairness_index(std::span<const double> values);

}  // namespace specmatch
