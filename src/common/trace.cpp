#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <ostream>

namespace specmatch::trace {

namespace {

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_flag("SPECMATCH_TRACE")};
  return flag;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int this_lane() {
  static std::atomic<int> next_lane{0};
  thread_local int lane = next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

struct Tracer::Impl {
  mutable std::mutex mutex;
  std::vector<Span> spans;
  std::size_t dropped = 0;
  std::int64_t epoch_ns = -1;  ///< set by the first recorded span
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // leaked; see Registry::global()
  return *tracer;
}

void Tracer::record(Span span) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->epoch_ns < 0) impl_->epoch_ns = span.start_ns;
  if (impl_->spans.size() >= kMaxSpans) {
    ++impl_->dropped;
    return;
  }
  span.start_ns -= impl_->epoch_ns;
  impl_->spans.push_back(std::move(span));
}

std::vector<Span> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->spans;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->spans.clear();
  impl_->dropped = 0;
  impl_->epoch_ns = -1;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  const std::vector<Span> spans = snapshot();
  out << "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    out << (i ? ",\n " : "\n ") << "{\"name\": \"" << s.name
        << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " << s.lane
        << ", \"ts\": " << static_cast<double>(s.start_ns) / 1000.0
        << ", \"dur\": " << static_cast<double>(s.duration_ns) / 1000.0
        << ", \"args\": {\"arg\": " << s.arg << "}}";
  }
  out << "\n]\n";
}

ScopedSpan::ScopedSpan(std::string_view name, std::int64_t arg)
    : name_(name), arg_(arg) {
  if (enabled()) start_ns_ = steady_now_ns();
}

ScopedSpan::~ScopedSpan() { end(); }

void ScopedSpan::end() {
  if (start_ns_ < 0) return;
  // A span started before tracing was switched off mid-scope still records;
  // that beats losing the enclosing phase timing.
  const std::int64_t end_ns = steady_now_ns();
  Tracer::global().record(
      Span{std::string(name_), start_ns_, end_ns - start_ns_, this_lane(),
           arg_});
  start_ns_ = -1;
}

}  // namespace specmatch::trace
