// SSE2 kernel tier (128-bit). Built with -msse2 on x86 (see src/CMakeLists);
// on other architectures this file compiles to a null table and the dispatch
// stays scalar. SSE2 predates both PSHUFB and the POPCNT instruction, so the
// popcount kernels here are the same per-word scalar loops as the reference
// tier — the 128-bit wins are the bulk stores and the emptiness/subset/scan
// tests, which reduce to PAND/POR/PANDN plus a compare-movemask emptiness
// check. Results are bit-identical to scalar by construction (integer only).
#include "common/simd.hpp"

#include <bit>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE2__)
#include <emmintrin.h>

namespace specmatch::simd {
namespace {

/// True iff any bit of v is set (SSE2 has no PTEST; compare bytes against
/// zero and check the 16-bit mask).
inline bool m128_nonzero(__m128i v) {
  return _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())) != 0xFFFF;
}

inline __m128i load2(const std::uint64_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void store2(std::uint64_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

std::size_t sse2_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i]);
  return total;
}

std::size_t sse2_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

std::size_t sse2_andnot_popcount(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & ~b[i]);
  return total;
}

void sse2_store_and(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    store2(dst + i, _mm_and_si128(load2(a + i), load2(b + i)));
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void sse2_store_or(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    store2(dst + i, _mm_or_si128(load2(a + i), load2(b + i)));
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void sse2_store_andnot(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  // PANDN computes ~x & y, so the mask goes in the first operand.
  for (; i + 2 <= n; i += 2)
    store2(dst + i, _mm_andnot_si128(load2(b + i), load2(a + i)));
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

bool sse2_intersects(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    if (m128_nonzero(_mm_and_si128(load2(a + i), load2(b + i)))) return true;
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

bool sse2_is_subset(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    if (m128_nonzero(_mm_andnot_si128(load2(b + i), load2(a + i))))
      return false;
  for (; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

bool sse2_any(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    if (m128_nonzero(load2(a + i))) return true;
  for (; i < n; ++i)
    if (a[i] != 0) return true;
  return false;
}

std::size_t sse2_find_nonzero(const std::uint64_t* a, std::size_t begin,
                              std::size_t n) {
  std::size_t i = begin;
  for (; i + 2 <= n; i += 2)
    if (m128_nonzero(load2(a + i))) break;
  for (; i < n; ++i)
    if (a[i] != 0) return i;
  return n;
}

std::size_t sse2_find_nonzero_and(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t begin,
                                  std::size_t n) {
  std::size_t i = begin;
  for (; i + 2 <= n; i += 2)
    if (m128_nonzero(_mm_and_si128(load2(a + i), load2(b + i)))) break;
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return i;
  return n;
}

constexpr Kernels kSse2Kernels = {
    sse2_popcount, sse2_and_popcount, sse2_andnot_popcount,
    sse2_store_and, sse2_store_or, sse2_store_andnot,
    sse2_intersects, sse2_is_subset, sse2_any,
    sse2_find_nonzero, sse2_find_nonzero_and,
    Tier::kSse2,
};

}  // namespace

namespace detail {
const Kernels* sse2_kernels_or_null() { return &kSse2Kernels; }
}  // namespace detail

}  // namespace specmatch::simd

#else  // non-x86 build (or SSE2 disabled): tier absent, dispatch skips it.

namespace specmatch::simd::detail {
const Kernels* sse2_kernels_or_null() { return nullptr; }
}  // namespace specmatch::simd::detail

#endif
