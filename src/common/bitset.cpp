#include "common/bitset.hpp"

#include <algorithm>

#include "common/simd.hpp"

namespace specmatch {

void DynamicBitset::clear() { std::fill(words_.begin(), words_.end(), 0); }

void DynamicBitset::assign_zero(std::size_t size) {
  size_ = size;
  words_.assign((size + kBits - 1) / kBits, 0);
}

void DynamicBitset::assign_and(const DynamicBitset& a, const DynamicBitset& b) {
  a.check_same_size(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  simd::store_and(words_.data(), a.words_.data(), b.words_.data(),
                  words_.size());
}

void DynamicBitset::assign_or(const DynamicBitset& a, const DynamicBitset& b) {
  a.check_same_size(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  simd::store_or(words_.data(), a.words_.data(), b.words_.data(),
                 words_.size());
}

void DynamicBitset::assign_difference(const DynamicBitset& a,
                                      const DynamicBitset& b) {
  a.check_same_size(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  simd::store_andnot(words_.data(), a.words_.data(), b.words_.data(),
                     words_.size());
}

void DynamicBitset::assign_andnot(const DynamicBitset& a,
                                  const DynamicBitset& b) {
  a.check_same_size(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  // ~a & b == b & ~a: reuse the andnot store with the operands swapped.
  simd::store_andnot(words_.data(), b.words_.data(), a.words_.data(),
                     words_.size());
}

std::size_t DynamicBitset::count() const {
  return simd::popcount_words(words_.data(), words_.size());
}

bool DynamicBitset::any() const {
  return simd::any_word(words_.data(), words_.size());
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  check_same_size(other);
  return simd::intersects(words_.data(), other.words_.data(), words_.size());
}

std::size_t DynamicBitset::intersection_count(const DynamicBitset& other) const {
  check_same_size(other);
  return simd::and_popcount(words_.data(), other.words_.data(), words_.size());
}

std::size_t DynamicBitset::difference_count(const DynamicBitset& other) const {
  check_same_size(other);
  return simd::andnot_popcount(words_.data(), other.words_.data(),
                               words_.size());
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  check_same_size(other);
  return simd::is_subset(words_.data(), other.words_.data(), words_.size());
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  simd::store_or(words_.data(), words_.data(), other.words_.data(),
                 words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  simd::store_and(words_.data(), words_.data(), other.words_.data(),
                  words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  check_same_size(other);
  simd::store_andnot(words_.data(), words_.data(), other.words_.data(),
                     words_.size());
  return *this;
}

std::size_t DynamicBitset::find_first() const {
  const std::size_t w =
      simd::find_nonzero_word(words_.data(), 0, words_.size());
  if (w == words_.size()) return size_;
  return w * kBits + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
}

std::size_t DynamicBitset::find_next(std::size_t pos) const {
  ++pos;
  if (pos >= size_) return size_;
  std::size_t w = pos / kBits;
  // The word containing `pos` needs its low bits masked off, so it cannot go
  // through the plain nonzero scan; the rest of the row can.
  const std::uint64_t masked = words_[w] & (~std::uint64_t{0} << (pos % kBits));
  if (masked != 0)
    return w * kBits + static_cast<std::size_t>(__builtin_ctzll(masked));
  w = simd::find_nonzero_word(words_.data(), w + 1, words_.size());
  if (w == words_.size()) return size_;
  return w * kBits + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace specmatch
