#include "common/bitset.hpp"

#include <algorithm>
#include <bit>

namespace specmatch {

void DynamicBitset::clear() { std::fill(words_.begin(), words_.end(), 0); }

void DynamicBitset::assign_zero(std::size_t size) {
  size_ = size;
  words_.assign((size + kBits - 1) / kBits, 0);
}

void DynamicBitset::assign_and(const DynamicBitset& a, const DynamicBitset& b) {
  a.check_same_size(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  for (std::size_t w = 0; w < words_.size(); ++w)
    words_[w] = a.words_[w] & b.words_[w];
}

void DynamicBitset::assign_or(const DynamicBitset& a, const DynamicBitset& b) {
  a.check_same_size(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  for (std::size_t w = 0; w < words_.size(); ++w)
    words_[w] = a.words_[w] | b.words_[w];
}

void DynamicBitset::assign_difference(const DynamicBitset& a,
                                      const DynamicBitset& b) {
  a.check_same_size(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  for (std::size_t w = 0; w < words_.size(); ++w)
    words_[w] = a.words_[w] & ~b.words_[w];
}

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t word : words_) total += std::popcount(word);
  return total;
}

bool DynamicBitset::any() const {
  for (std::uint64_t word : words_)
    if (word != 0) return true;
  return false;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if ((words_[w] & other.words_[w]) != 0) return true;
  return false;
}

std::size_t DynamicBitset::intersection_count(const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w)
    total += std::popcount(words_[w] & other.words_[w]);
  return total;
}

std::size_t DynamicBitset::difference_count(const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w)
    total += std::popcount(words_[w] & ~other.words_[w]);
  return total;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  return true;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

std::size_t DynamicBitset::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return w * kBits + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t pos) const {
  ++pos;
  if (pos >= size_) return size_;
  std::size_t w = pos / kBits;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (pos % kBits));
  while (true) {
    if (word != 0)
      return w * kBits + static_cast<std::size_t>(__builtin_ctzll(word));
    if (++w == words_.size()) return size_;
    word = words_[w];
  }
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace specmatch
