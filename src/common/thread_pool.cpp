#include "common/thread_pool.hpp"

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace specmatch {

thread_local bool ThreadPool::t_in_worker = false;

ThreadPool::ThreadPool(std::size_t num_threads) {
  SPECMATCH_CHECK_MSG(num_threads >= 1, "ThreadPool needs >= 1 lane");
  metrics::gauge_set("pool.lanes", static_cast<double>(num_threads));
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  metrics::count("pool.tasks");
  if (workers_.empty()) {
    // Serial pool: run inline so SPECMATCH_THREADS=1 is the exact serial
    // path with no queueing machinery in the way.
    task();
    return;
  }
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  if (metrics::enabled())
    metrics::observe("pool.queue_depth", static_cast<double>(depth));
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // parallel_for captures exceptions; bare submits must not throw
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(mutex);
  const int configured = SpecmatchConfig::global().num_threads;
  const auto want = static_cast<std::size_t>(configured < 1 ? 1 : configured);
  if (pool == nullptr || pool->num_threads() != want)
    pool = std::make_unique<ThreadPool>(want);
  return *pool;
}

}  // namespace specmatch
