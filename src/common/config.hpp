// Engine-wide runtime configuration.
//
// One process-wide knob object so every subsystem (thread pool, parallel
// Stage-I/II selection, trial runner, benches) agrees on how much hardware
// to use without threading a parameter through every call site.
#pragma once

namespace specmatch {

struct SpecmatchConfig {
  /// Worker threads used by the parallel engine. 1 selects the exact serial
  /// code path everywhere (no pool workers are spawned). Initialised from
  /// the SPECMATCH_THREADS environment variable; when unset or invalid it
  /// defaults to the hardware concurrency (at least 1).
  int num_threads = 1;

  /// The mutable process-wide configuration. Changing num_threads takes
  /// effect on the next ThreadPool::global() access. Mutation is not
  /// synchronised against concurrent engine use — set it between runs, as
  /// the determinism tests do.
  static SpecmatchConfig& global();
};

}  // namespace specmatch
