// Engine-wide runtime configuration.
//
// One process-wide knob object so every subsystem (thread pool, parallel
// Stage-I/II selection, trial runner, benches) agrees on how much hardware
// to use without threading a parameter through every call site.
//
// This header also hosts the canonical registry of every SPECMATCH_* knob
// (environment variables plus the SPECMATCH_SANITIZE CMake option) —
// known_env_knobs() below. tools/docs_check.sh verifies that every knob
// mentioned in the documentation appears here, so the registry cannot drift
// from the docs.
#pragma once

#include <span>

namespace specmatch {

/// One SPECMATCH_* configuration knob: its name and where it is read.
struct EnvKnob {
  const char* name;
  const char* description;
};

/// Every recognised SPECMATCH_* knob. Add new knobs here (with the module
/// that reads them) so docs_check keeps docs and code in sync.
std::span<const EnvKnob> known_env_knobs();

struct SpecmatchConfig {
  /// Worker threads used by the parallel engine. 1 selects the exact serial
  /// code path everywhere (no pool workers are spawned). Initialised from
  /// the SPECMATCH_THREADS environment variable; when unset or invalid it
  /// defaults to the hardware concurrency (at least 1).
  int num_threads = 1;

  /// The mutable process-wide configuration. Changing num_threads takes
  /// effect on the next ThreadPool::global() access. Mutation is not
  /// synchronised against concurrent engine use — set it between runs, as
  /// the determinism tests do.
  static SpecmatchConfig& global();
};

}  // namespace specmatch
