// DynamicBitset: a fixed-size-at-construction bitset over 64-bit words.
//
// Interference graphs over N buyers store one DynamicBitset adjacency row per
// vertex; seller coalition feasibility checks reduce to word-parallel
// intersection tests, which keeps the N = 500 sweeps of Figs. 7-8 fast on a
// single core. The interface is deliberately small and bounds-checked. The
// word loops themselves live in common/simd.hpp: every counting, masking,
// and scanning method routes through the runtime-dispatched kernel layer
// (AVX2/SSE2/scalar, bit-identical across tiers by contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/simd.hpp"

namespace specmatch {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + kBits - 1) / kBits, 0) {}

  std::size_t size() const { return size_; }

  bool test(std::size_t pos) const {
    SPECMATCH_DCHECK(pos < size_);
    return (words_[pos / kBits] >> (pos % kBits)) & 1u;
  }

  void set(std::size_t pos) {
    SPECMATCH_DCHECK(pos < size_);
    words_[pos / kBits] |= std::uint64_t{1} << (pos % kBits);
  }

  void reset(std::size_t pos) {
    SPECMATCH_DCHECK(pos < size_);
    words_[pos / kBits] &= ~(std::uint64_t{1} << (pos % kBits));
  }

  void set(std::size_t pos, bool value) {
    if (value)
      set(pos);
    else
      reset(pos);
  }

  /// Clears every bit.
  void clear();

  /// Makes this an all-clear bitset of `size` bits, reusing the existing
  /// word storage when it is large enough (no allocation in steady state).
  void assign_zero(std::size_t size);

  /// Sets this to `a & b` / `a | b` / `a - b` without a temporary, reusing
  /// the existing word storage when possible. `this` may alias `a` or `b`.
  void assign_and(const DynamicBitset& a, const DynamicBitset& b);
  void assign_or(const DynamicBitset& a, const DynamicBitset& b);
  void assign_difference(const DynamicBitset& a, const DynamicBitset& b);
  /// Sets this to `~a & b` (ANDNOT operand order — the mirror image of
  /// assign_difference). Tail bits past size() stay clear because `b`'s
  /// tail is clear and the complement of `a` is masked by it.
  void assign_andnot(const DynamicBitset& a, const DynamicBitset& b);

  /// Number of set bits.
  std::size_t count() const;

  /// Number of bits set in this bitset but not in `other` —
  /// (*this - other).count() without materialising the difference.
  std::size_t difference_count(const DynamicBitset& other) const;

  bool any() const;
  bool none() const { return !any(); }

  /// True iff this bitset and `other` share at least one set bit.
  bool intersects(const DynamicBitset& other) const;

  /// Number of set bits shared with `other` — (*this & other).count()
  /// without materialising the intersection.
  std::size_t intersection_count(const DynamicBitset& other) const;

  /// True iff every set bit of this bitset is also set in `other`.
  bool is_subset_of(const DynamicBitset& other) const;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// Clears every bit that is set in `other` (set difference).
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) {
    a -= b;
    return a;
  }

  bool operator==(const DynamicBitset& other) const = default;

  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const;

  /// Index of the first set bit strictly after `pos`, or size() if none.
  std::size_t find_next(std::size_t pos) const;

  /// Calls `fn(index)` for every set bit in ascending order. Rows up to
  /// kSkipScanWords stay on the plain inline word loop (paper-scale markets;
  /// an indirect kernel call per word would cost more than it saves); larger
  /// rows skip runs of zero words through the dispatched nonzero-word scan.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    const std::size_t nw = words_.size();
    const std::uint64_t* wp = words_.data();
    if (nw <= kSkipScanWords) {
      for (std::size_t w = 0; w < nw; ++w) {
        std::uint64_t word = wp[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          fn(w * kBits + static_cast<std::size_t>(bit));
          word &= word - 1;
        }
      }
      return;
    }
    for (std::size_t w = simd::find_nonzero_word(wp, 0, nw); w < nw;
         w = simd::find_nonzero_word(wp, w + 1, nw)) {
      std::uint64_t word = wp[w];
      do {
        const int bit = __builtin_ctzll(word);
        fn(w * kBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      } while (word != 0);
    }
  }

  /// Calls `fn(index)` for every bit set in both this bitset and `other`,
  /// in ascending order — for_each_set over (*this & other) without the
  /// temporary (hot path of the incremental MWIS scoring). Same small/large
  /// split as for_each_set, with the masked nonzero-word scan kernel.
  template <typename Fn>
  void for_each_set_and(const DynamicBitset& other, Fn&& fn) const {
    check_same_size(other);
    const std::size_t nw = words_.size();
    const std::uint64_t* wp = words_.data();
    const std::uint64_t* op = other.words_.data();
    if (nw <= kSkipScanWords) {
      for (std::size_t w = 0; w < nw; ++w) {
        std::uint64_t word = wp[w] & op[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          fn(w * kBits + static_cast<std::size_t>(bit));
          word &= word - 1;
        }
      }
      return;
    }
    for (std::size_t w = simd::find_nonzero_word_and(wp, op, 0, nw); w < nw;
         w = simd::find_nonzero_word_and(wp, op, w + 1, nw)) {
      std::uint64_t word = wp[w] & op[w];
      do {
        const int bit = __builtin_ctzll(word);
        fn(w * kBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      } while (word != 0);
    }
  }

  /// Set-bit indices in ascending order (convenience for tests / tracing).
  std::vector<std::size_t> to_indices() const;

 private:
  static constexpr std::size_t kBits = 64;

  /// Word-count threshold below which iteration sticks to the plain inline
  /// loop instead of the dispatched zero-word skip scan (16 words = 1024
  /// bits, comfortably above the paper's N = 500 markets).
  static constexpr std::size_t kSkipScanWords = 16;

  void check_same_size(const DynamicBitset& other) const {
    SPECMATCH_CHECK_MSG(size_ == other.size_,
                        "bitset size mismatch: " << size_ << " vs "
                                                 << other.size_);
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace specmatch
