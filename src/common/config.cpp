#include "common/config.hpp"

#include <cstdlib>
#include <thread>

namespace specmatch {

namespace {

int initial_num_threads() {
  if (const char* env = std::getenv("SPECMATCH_THREADS");
      env != nullptr && env[0] != '\0') {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// The knob registry backing known_env_knobs(). Keep one entry per
/// SPECMATCH_* variable the codebase or build reads; docs_check fails when a
/// documented knob is missing from this file.
constexpr EnvKnob kKnownEnvKnobs[] = {
    {"SPECMATCH_THREADS",
     "engine thread-pool lanes; 1 = exact serial path (common/config.cpp)"},
    {"SPECMATCH_METRICS",
     "enable the metrics registry; counters/gauges/histograms record and the "
     "benches export them (common/metrics.cpp)"},
    {"SPECMATCH_METRICS_OUT",
     "path for the per-trial metrics JSONL dump written by exp::run_trials "
     "when metrics are enabled (exp/experiment.cpp)"},
    {"SPECMATCH_TRACE",
     "enable the scoped-span tracer (common/trace.cpp)"},
    {"SPECMATCH_TRACE_OUT",
     "path for the chrome-trace JSON dumped by micro_core when tracing is "
     "enabled (bench/micro_core.cpp)"},
    {"SPECMATCH_TRIALS",
     "override every bench harness's trials-per-point (bench/bench_util.hpp)"},
    {"SPECMATCH_CSV",
     "benches additionally print machine-readable CSV panels "
     "(bench/bench_util.hpp)"},
    {"SPECMATCH_BENCH_JSON",
     "output path of the bench perf JSON, default BENCH_core.json for "
     "micro_core and BENCH_scale.json for large_market (bench/)"},
    {"SPECMATCH_BENCH_SMOKE",
     "shrink the micro_core trajectory and the large_market sweep to smoke "
     "size (bench/)"},
    {"SPECMATCH_COUNT_ALLOCS",
     "count every heap allocation via the replaced global operator new; the "
     "engine reports steady-round allocation counts "
     "(common/alloc_count.cpp)"},
    {"SPECMATCH_SCALE_MAX_N",
     "cap the N sweep of the large_market scale bench "
     "(bench/large_market.cpp)"},
    {"SPECMATCH_GRAPH_DENSE_MAX",
     "largest vertex count stored as dense bitset adjacency; bigger graphs "
     "use the CSR representation, default 2048 "
     "(graph/interference_graph.cpp)"},
    {"SPECMATCH_SIMD",
     "kernel dispatch tier: auto|avx2|sse2|scalar, default auto (highest "
     "tier the CPU supports); results are bit-identical at every setting "
     "(common/simd.cpp)"},
    {"SPECMATCH_BENCH_THREADS",
     "parallel lane count of the micro_core trajectory, default 4 "
     "(bench/micro_core.cpp)"},
    {"SPECMATCH_SERVE_THREADS",
     "MatchServer drain lanes (resident workspaces), default "
     "SPECMATCH_THREADS; responses are identical at any setting "
     "(serve/server.cpp)"},
    {"SPECMATCH_SERVE_QUEUE",
     "MatchServer admission queue capacity in requests, default 1024; "
     "overflow blocks or sheds per the configured policy (serve/server.cpp)"},
    {"SPECMATCH_SERVE_MEM_MB",
     "resident-market byte budget for the serving LRU registry, default "
     "4096 MB (serve/server.cpp)"},
    {"SPECMATCH_SERVE_CHECK_WARM",
     "CHECK after every warm solve that the result is interference-free and "
     "individually rational; welfare regressions always fall back to a cold "
     "re-solve (serve/server.cpp)"},
    {"SPECMATCH_SERVE_WARM_FULL",
     "run warm solves over the full buyer set instead of restricting Stage "
     "II to the components touched since the last solve (serve/server.cpp)"},
    {"SPECMATCH_SERVE_LISTEN_BACKLOG",
     "listen(2) backlog of the TCP front-end, default 128 "
     "(serve/net_server.cpp)"},
    {"SPECMATCH_SERVE_MAX_CONNS",
     "concurrent-connection cap of the TCP front-end, default 1024; accepts "
     "beyond it are refused with one err! line (serve/net_server.cpp)"},
    {"SPECMATCH_SERVE_CONN_WINDOW",
     "per-connection in-flight request window, default 64; the event loop "
     "stops reading a connection at the limit so backpressure propagates as "
     "TCP flow control (serve/net_server.cpp)"},
    {"SPECMATCH_SERVE_DRAIN_MS",
     "graceful-drain budget of the TCP front-end in milliseconds, default "
     "5000; past it, remaining connections are force-closed "
     "(serve/net_server.cpp)"},
    {"SPECMATCH_NET_CONNS",
     "comma-separated connection-count grid of the serve_load --net bench, "
     "default 1,64,512 (1,8 under SPECMATCH_BENCH_SMOKE) "
     "(bench/serve_load.cpp)"},
    {"SPECMATCH_SERVE_MAX_LINE",
     "longest tolerated wire-protocol line in bytes, default 1048576; a "
     "frame with no newline beyond it is a protocol error "
     "(serve/net_server.cpp)"},
    {"SPECMATCH_STORE_DIR",
     "snapshot directory of the persistent market store; empty (the "
     "default) disables the store — no spill tier, no cold boot, snapshot/"
     "restore verbs answer err (store/market_store.cpp)"},
    {"SPECMATCH_STORE_SPILL",
     "spill-on-evict: when the store is enabled, registry eviction writes "
     "the market to disk instead of discarding it, default on; 0 turns "
     "eviction back into discard (store/market_store.cpp)"},
    {"SPECMATCH_STORE_FSYNC",
     "fsync every snapshot file before its rename-commit, default off; "
     "turn on when snapshots must survive power loss "
     "(store/market_store.cpp)"},
    {"SPECMATCH_COMPONENT_MIN",
     "minimum vertices per component shard of the coalition solves, default "
     "64; shards batch consecutive components up to the minimum "
     "(graph/components.cpp)"},
    {"SPECMATCH_CLUSTER_WORKERS",
     "default worker port list of `serve --coordinator` as a comma-separated "
     "\"P1,P2,...\"; the --workers flag overrides it "
     "(tools/specmatch_cli.cpp)"},
    {"SPECMATCH_CLUSTER_CONNECT_ATTEMPTS",
     "connect retries per worker while the coordinator comes up, default 10, "
     "exponentially backed off (serve/cluster/coordinator.cpp)"},
    {"SPECMATCH_CLUSTER_CONNECT_BACKOFF_MS",
     "initial sleep between worker connect retries in milliseconds, default "
     "20, doubling per attempt (serve/cluster/coordinator.cpp)"},
    {"SPECMATCH_CLUSTER_SCATTER_TIMEOUT_MS",
     "bound on every coordinator-to-worker read in milliseconds, default "
     "10000; a slower worker counts as dead and the market consolidates "
     "onto a survivor (serve/cluster/coordinator.cpp)"},
    {"SPECMATCH_CLUSTER_STATS",
     "append cluster_workers=/cluster_scatters=/cluster_migrations=/"
     "cluster_consolidations= to coordinator `stats` responses, default off "
     "so transcripts stay byte-identical to a single-process server "
     "(serve/cluster/coordinator.cpp)"},
    {"SPECMATCH_SANITIZE",
     "CMake option (not an env var): build with address/undefined/thread "
     "sanitizer (CMakeLists.txt)"},
};

}  // namespace

std::span<const EnvKnob> known_env_knobs() { return kKnownEnvKnobs; }

SpecmatchConfig& SpecmatchConfig::global() {
  static SpecmatchConfig config{initial_num_threads()};
  return config;
}

}  // namespace specmatch
