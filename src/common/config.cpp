#include "common/config.hpp"

#include <cstdlib>
#include <thread>

namespace specmatch {

namespace {

int initial_num_threads() {
  if (const char* env = std::getenv("SPECMATCH_THREADS");
      env != nullptr && env[0] != '\0') {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

SpecmatchConfig& SpecmatchConfig::global() {
  static SpecmatchConfig config{initial_num_threads()};
  return config;
}

}  // namespace specmatch
