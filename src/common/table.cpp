#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace specmatch {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  SPECMATCH_CHECK_MSG(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SPECMATCH_CHECK_MSG(cells.size() == columns_.size(),
                      "row has " << cells.size() << " cells, expected "
                                 << columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_double(v, precision));
  add_row(std::move(formatted));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  emit(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << quote(cells[c]);
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace specmatch
