// Runtime-dispatched SIMD kernel layer for the word-array hot paths.
//
// Every bitset-shaped hot loop in the engine — adjacency intersection tests,
// MWIS degree recomputation, Stage II masked-applicant scans — bottoms out in
// a handful of primitives over arrays of 64-bit words: multi-word popcount,
// and/andnot-popcount ("count bits of A within mask B"), bulk and/or/andnot
// stores, emptiness/subset tests, and nonzero-word scans (the skeleton of
// find-first / find-next / for-each-set iteration). This header exposes those
// primitives once, behind a function-pointer table resolved at runtime:
//
//   AVX2 (256-bit, CPUID-probed)  ->  SSE2 (128-bit)  ->  scalar
//
// The SPECMATCH_SIMD knob (auto | avx2 | sse2 | scalar) forces a tier; a
// forced tier the CPU cannot run falls back to the best supported tier below
// it with one stderr warning. On non-x86 builds only the scalar tier exists.
//
// Hard contract: every tier returns bit-identical results. All kernels are
// pure integer/bitwise operations, so this holds by construction — there is
// no floating-point reassociation anywhere in the layer (the GWMIN2 weight
// sums deliberately stay scalar in graph/mwis.cpp for exactly that reason).
// tests/simd_test.cpp checks each kernel of each available tier against a
// naive reference, and the simd_equivalence ctest pins end-to-end matchings,
// serve transcripts, and bench `result:` lines across tiers.
//
// Observability: resolving the dispatch records a one-time simd.dispatch.*
// gauge set (chosen tier + CPUID flags) and each wrapper bumps a per-kernel
// invocation counter — both only when SPECMATCH_METRICS is on; when off the
// cost is the usual single relaxed load per call (see common/metrics.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/metrics.hpp"

namespace specmatch::simd {

/// Dispatch tier, lowest to highest. Values are stable (they appear in the
/// simd.dispatch.tier gauge and the bench JSON).
enum class Tier : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// "scalar" / "sse2" / "avx2".
const char* to_string(Tier tier);

/// Kernel identifiers, used for the per-kernel invocation counters and the
/// micro-bench rows. Order matches the Kernels table below.
enum class KernelId : std::uint8_t {
  kPopcount = 0,       ///< total set bits over a word array
  kAndPopcount,        ///< |A & B| — "bits of A inside mask B"
  kAndnotPopcount,     ///< |A & ~B| — difference count
  kStoreAnd,           ///< dst = a & b
  kStoreOr,            ///< dst = a | b
  kStoreAndnot,        ///< dst = a & ~b
  kIntersects,         ///< (A & B) != 0, early-exit
  kIsSubset,           ///< (A & ~B) == 0, early-exit
  kAny,                ///< A != 0, early-exit
  kFindNonzero,        ///< first word index with a[i] != 0 in [begin, n)
  kFindNonzeroAnd,     ///< first word index with (a[i] & b[i]) != 0
  kNumKernels,
};
inline constexpr std::size_t kNumKernels =
    static_cast<std::size_t>(KernelId::kNumKernels);

/// "popcount", "and_popcount", ... (the bench row / counter names).
const char* kernel_name(KernelId id);

/// One tier's kernel implementations. All kernels accept nwords == 0 (and
/// then never dereference the pointers). The store kernels allow dst to
/// alias a or b exactly (same base pointer); partial overlap is undefined.
struct Kernels {
  std::size_t (*popcount)(const std::uint64_t* a, std::size_t nwords);
  std::size_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t nwords);
  std::size_t (*andnot_popcount)(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t nwords);
  void (*store_and)(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t nwords);
  void (*store_or)(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t nwords);
  void (*store_andnot)(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t nwords);
  bool (*intersects)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t nwords);
  bool (*is_subset)(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t nwords);
  bool (*any)(const std::uint64_t* a, std::size_t nwords);
  /// First i in [begin, nwords) with a[i] != 0, else nwords.
  std::size_t (*find_nonzero)(const std::uint64_t* a, std::size_t begin,
                              std::size_t nwords);
  /// First i in [begin, nwords) with (a[i] & b[i]) != 0, else nwords.
  std::size_t (*find_nonzero_and)(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t begin,
                                  std::size_t nwords);
  Tier tier;
};

/// The scalar reference table — the determinism baseline every other tier
/// must match bit-for-bit (and the comparison leg of bench/micro_kernels).
const Kernels& scalar_kernels();

/// The kernel table of `tier`; CHECK-fails when the tier is unsupported on
/// this CPU/build (query tier_supported first).
const Kernels& kernels_for(Tier tier);

/// True when this build has the tier's translation unit AND the CPU reports
/// the ISA. kScalar is always supported.
bool tier_supported(Tier tier);

/// The tier the dispatched wrappers currently route to. Resolved on first
/// use from SPECMATCH_SIMD + CPUID; changed only by force_tier.
Tier active_tier();

/// Re-points the dispatched wrappers at `tier` (tests and benches; not
/// synchronised with in-flight kernel calls — switch between runs, like
/// SpecmatchConfig::num_threads). Returns false, changing nothing, when the
/// tier is unsupported.
bool force_tier(Tier tier);

namespace detail {

/// Active table pointer. Constant-initialised to null; the first dispatched
/// call resolves it (cheap acquire load afterwards). An atomic so tests that
/// force tiers between runs stay TSan-clean.
inline std::atomic<const Kernels*> active{nullptr};

/// One-time resolve (CPUID probe + SPECMATCH_SIMD): stores into `active`
/// and returns the table.
const Kernels* resolve();

inline const Kernels& table() {
  const Kernels* k = active.load(std::memory_order_acquire);
  return k != nullptr ? *k : *resolve();
}

/// Slow path of the per-kernel invocation counters (metrics on only).
void count_call_slow(KernelId id);

inline void count_call(KernelId id) {
  if (metrics::enabled()) count_call_slow(id);
}

// Per-ISA tables, defined in simd_sse2.cpp / simd_avx2.cpp. Null when the
// translation unit was built without the ISA (non-x86 targets): the files
// always compile, only the kernels inside are conditional.
const Kernels* sse2_kernels_or_null();
const Kernels* avx2_kernels_or_null();

}  // namespace detail

// --- dispatched wrappers (the API the engine calls) -------------------------

inline std::size_t popcount_words(const std::uint64_t* a, std::size_t nwords) {
  detail::count_call(KernelId::kPopcount);
  return detail::table().popcount(a, nwords);
}

inline std::size_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t nwords) {
  detail::count_call(KernelId::kAndPopcount);
  return detail::table().and_popcount(a, b, nwords);
}

inline std::size_t andnot_popcount(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::size_t nwords) {
  detail::count_call(KernelId::kAndnotPopcount);
  return detail::table().andnot_popcount(a, b, nwords);
}

inline void store_and(std::uint64_t* dst, const std::uint64_t* a,
                      const std::uint64_t* b, std::size_t nwords) {
  detail::count_call(KernelId::kStoreAnd);
  detail::table().store_and(dst, a, b, nwords);
}

inline void store_or(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t nwords) {
  detail::count_call(KernelId::kStoreOr);
  detail::table().store_or(dst, a, b, nwords);
}

inline void store_andnot(std::uint64_t* dst, const std::uint64_t* a,
                         const std::uint64_t* b, std::size_t nwords) {
  detail::count_call(KernelId::kStoreAndnot);
  detail::table().store_andnot(dst, a, b, nwords);
}

inline bool intersects(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t nwords) {
  detail::count_call(KernelId::kIntersects);
  return detail::table().intersects(a, b, nwords);
}

inline bool is_subset(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t nwords) {
  detail::count_call(KernelId::kIsSubset);
  return detail::table().is_subset(a, b, nwords);
}

inline bool any_word(const std::uint64_t* a, std::size_t nwords) {
  detail::count_call(KernelId::kAny);
  return detail::table().any(a, nwords);
}

inline std::size_t find_nonzero_word(const std::uint64_t* a, std::size_t begin,
                                     std::size_t nwords) {
  detail::count_call(KernelId::kFindNonzero);
  return detail::table().find_nonzero(a, begin, nwords);
}

inline std::size_t find_nonzero_word_and(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::size_t begin,
                                         std::size_t nwords) {
  detail::count_call(KernelId::kFindNonzeroAnd);
  return detail::table().find_nonzero_and(a, b, begin, nwords);
}

}  // namespace specmatch::simd
