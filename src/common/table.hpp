// Aligned text tables and CSV emission for the benchmark harnesses.
//
// Every fig*/ablation_* binary prints one table per paper figure panel; Table
// renders it human-readable on stdout and (optionally) machine-readable CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace specmatch {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must have exactly one cell per column.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return columns_.size(); }

  /// Space-aligned rendering with a header rule.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by harnesses).
std::string format_double(double value, int precision = 4);

}  // namespace specmatch
