#include "common/simd.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace specmatch::simd {

namespace {

// --- scalar reference kernels ----------------------------------------------
// These are the determinism baseline: plain per-word loops, one operation per
// word, no reordering. Every other tier must match them bit-for-bit (trivial
// here — everything is integer — but asserted anyway by tests/simd_test.cpp).

std::size_t scalar_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i]);
  return total;
}

std::size_t scalar_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

std::size_t scalar_andnot_popcount(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & ~b[i]);
  return total;
}

void scalar_store_and(std::uint64_t* dst, const std::uint64_t* a,
                      const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

void scalar_store_or(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

void scalar_store_andnot(std::uint64_t* dst, const std::uint64_t* a,
                         const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

bool scalar_intersects(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

bool scalar_is_subset(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

bool scalar_any(const std::uint64_t* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != 0) return true;
  return false;
}

std::size_t scalar_find_nonzero(const std::uint64_t* a, std::size_t begin,
                                std::size_t n) {
  for (std::size_t i = begin; i < n; ++i)
    if (a[i] != 0) return i;
  return n;
}

std::size_t scalar_find_nonzero_and(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t begin,
                                    std::size_t n) {
  for (std::size_t i = begin; i < n; ++i)
    if ((a[i] & b[i]) != 0) return i;
  return n;
}

constexpr Kernels kScalarKernels = {
    scalar_popcount, scalar_and_popcount, scalar_andnot_popcount,
    scalar_store_and, scalar_store_or, scalar_store_andnot,
    scalar_intersects, scalar_is_subset, scalar_any,
    scalar_find_nonzero, scalar_find_nonzero_and,
    Tier::kScalar,
};

// --- dispatch resolution ----------------------------------------------------

/// Parses SPECMATCH_SIMD. Unset/empty/"auto" -> nullopt-style auto (returned
/// as kAvx2 + auto flag via the bool). Invalid values warn once and mean
/// auto; they never abort a run over a typo'd knob.
bool requested_tier(Tier* out) {
  const char* env = std::getenv("SPECMATCH_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0)
    return false;
  if (std::strcmp(env, "scalar") == 0) return *out = Tier::kScalar, true;
  if (std::strcmp(env, "sse2") == 0) return *out = Tier::kSse2, true;
  if (std::strcmp(env, "avx2") == 0) return *out = Tier::kAvx2, true;
  std::fprintf(stderr,
               "specmatch: SPECMATCH_SIMD='%s' is not auto|avx2|sse2|scalar; "
               "using auto\n",
               env);
  return false;
}

const Kernels* table_or_null(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &kScalarKernels;
    case Tier::kSse2:
      return detail::sse2_kernels_or_null();
    case Tier::kAvx2:
      return detail::avx2_kernels_or_null();
  }
  return nullptr;
}

/// Best supported tier at or below `want` (kScalar is always supported).
const Kernels* best_table_at_or_below(Tier want) {
  for (int t = static_cast<int>(want); t > 0; --t)
    if (const Kernels* k = table_or_null(static_cast<Tier>(t))) return k;
  return &kScalarKernels;
}

/// One-time simd.dispatch.* info gauges: the chosen tier plus the CPUID/build
/// capability flags (so a JSON snapshot records why the tier was chosen).
void record_dispatch_metrics(const Kernels* chosen) {
  if (!metrics::enabled()) return;
  metrics::gauge_set("simd.dispatch.tier",
                     static_cast<double>(static_cast<int>(chosen->tier)));
  metrics::gauge_set("simd.cpu.sse2", tier_supported(Tier::kSse2) ? 1.0 : 0.0);
  metrics::gauge_set("simd.cpu.avx2", tier_supported(Tier::kAvx2) ? 1.0 : 0.0);
}

}  // namespace

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* kernel_name(KernelId id) {
  switch (id) {
    case KernelId::kPopcount:
      return "popcount";
    case KernelId::kAndPopcount:
      return "and_popcount";
    case KernelId::kAndnotPopcount:
      return "andnot_popcount";
    case KernelId::kStoreAnd:
      return "store_and";
    case KernelId::kStoreOr:
      return "store_or";
    case KernelId::kStoreAndnot:
      return "store_andnot";
    case KernelId::kIntersects:
      return "intersects";
    case KernelId::kIsSubset:
      return "is_subset";
    case KernelId::kAny:
      return "any";
    case KernelId::kFindNonzero:
      return "find_nonzero";
    case KernelId::kFindNonzeroAnd:
      return "find_nonzero_and";
    case KernelId::kNumKernels:
      break;
  }
  return "unknown";
}

const Kernels& scalar_kernels() { return kScalarKernels; }

bool tier_supported(Tier tier) { return table_or_null(tier) != nullptr; }

const Kernels& kernels_for(Tier tier) {
  const Kernels* k = table_or_null(tier);
  SPECMATCH_CHECK_MSG(k != nullptr, "SIMD tier " << to_string(tier)
                                                 << " unsupported on this "
                                                    "CPU/build");
  return *k;
}

Tier active_tier() { return detail::table().tier; }

bool force_tier(Tier tier) {
  const Kernels* k = table_or_null(tier);
  if (k == nullptr) return false;
  detail::active.store(k, std::memory_order_release);
  record_dispatch_metrics(k);
  return true;
}

namespace detail {

const Kernels* resolve() {
  // One probe per process; concurrent first calls race benignly (same value).
  static const Kernels* const resolved = [] {
    Tier want = Tier::kAvx2;  // auto: the highest tier this build knows
    if (requested_tier(&want) && table_or_null(want) == nullptr) {
      std::fprintf(stderr,
                   "specmatch: SPECMATCH_SIMD=%s unsupported on this "
                   "CPU/build; falling back\n",
                   to_string(want));
    }
    const Kernels* chosen = best_table_at_or_below(want);
    record_dispatch_metrics(chosen);
    return chosen;
  }();
  active.store(resolved, std::memory_order_release);
  return resolved;
}

void count_call_slow(KernelId id) {
  // Cached Counter pointers: the registry lookup (string hash + mutex) runs
  // once per kernel per process; afterwards a call is one relaxed add.
  static metrics::Counter* counters[kNumKernels] = {};
  static const bool initialised = [] {
    for (std::size_t k = 0; k < kNumKernels; ++k) {
      std::string name = "simd.";
      name += kernel_name(static_cast<KernelId>(k));
      name += ".calls";
      counters[k] = &metrics::Registry::global().counter(name);
    }
    return true;
  }();
  (void)initialised;
  counters[static_cast<std::size_t>(id)]->add();
}

}  // namespace detail

}  // namespace specmatch::simd
