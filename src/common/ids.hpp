// Index types shared across the library.
//
// After dummy virtualisation (Section II-A of the paper) every virtual seller
// owns exactly one channel, so a SellerId doubles as a ChannelId; both range
// over [0, M). Virtual buyers range over [0, N).
#pragma once

#include <cstdint>

namespace specmatch {

using BuyerId = std::int32_t;
using SellerId = std::int32_t;
/// A virtual seller and her single channel share an index (paper §II-A).
using ChannelId = SellerId;

/// Sentinel for "buyer j is unmatched", i.e. µ(j) = {j}.
inline constexpr SellerId kUnmatched = -1;

}  // namespace specmatch
