#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace specmatch {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::stderror() const {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double Summary::confidence_halfwidth(double z) const {
  SPECMATCH_CHECK_MSG(z > 0.0, "non-positive z-score " << z);
  return z * stderror();
}

double Summary::min() const { return min_; }
double Summary::max() const { return max_; }

std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

namespace {

double pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size();
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace

double spearman(std::span<const double> a, std::span<const double> b) {
  SPECMATCH_CHECK_MSG(a.size() == b.size(),
                      "spearman: length mismatch " << a.size() << " vs "
                                                   << b.size());
  if (a.size() < 2) return 0.0;
  const auto ra = fractional_ranks(a);
  const auto rb = fractional_ranks(b);
  return pearson(ra, rb);
}

double mean_pairwise_spearman(std::span<const double> rows, std::size_t cols) {
  SPECMATCH_CHECK(cols > 0);
  SPECMATCH_CHECK(rows.size() % cols == 0);
  const std::size_t n = rows.size() / cols;
  if (n < 2) return 1.0;
  Summary acc;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      acc.add(spearman(rows.subspan(i * cols, cols),
                       rows.subspan(j * cols, cols)));
    }
  }
  return acc.mean();
}

double jain_fairness_index(std::span<const double> values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (values.empty() || sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace specmatch
