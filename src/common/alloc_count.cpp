// Global operator new/delete replacements backing alloc_count.hpp.
//
// The counter is a constinit atomic so the hooks are safe during static
// initialisation; the SPECMATCH_COUNT_ALLOCS knob is latched by an ordinary
// static initialiser, so a handful of pre-main allocations may go uncounted —
// harmless, because callers only ever diff two samples taken at run time.
#include "common/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace specmatch::alloc_count {
namespace {

constinit std::atomic<std::int64_t> g_total{0};
constinit std::atomic<bool> g_counting{false};

bool env_counting() {
  const char* env = std::getenv("SPECMATCH_COUNT_ALLOCS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

const bool g_env_latch = [] {
  g_counting.store(env_counting(), std::memory_order_relaxed);
  return true;
}();

inline void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed))
    g_total.fetch_add(1, std::memory_order_relaxed);
}

void* checked_malloc(std::size_t size) {
  note_alloc();
  if (size == 0) size = 1;
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc{};
}

void* checked_aligned(std::size_t size, std::size_t align) {
  note_alloc();
  if (size == 0) size = align;
  if (void* ptr = std::aligned_alloc(align, (size + align - 1) / align * align))
    return ptr;
  throw std::bad_alloc{};
}

}  // namespace

bool counting() { return g_counting.load(std::memory_order_relaxed); }

void set_counting(bool on) {
  (void)g_env_latch;  // anchor the env latch so it is linked alongside
  g_counting.store(on, std::memory_order_relaxed);
}

std::int64_t total() { return g_total.load(std::memory_order_relaxed); }

}  // namespace specmatch::alloc_count

// Replaceable global allocation functions ([new.delete]); the nothrow and
// aligned forms forward here or to the same malloc/free core so every heap
// allocation in the process is observed.
void* operator new(std::size_t size) {
  return specmatch::alloc_count::checked_malloc(size);
}

void* operator new[](std::size_t size) {
  return specmatch::alloc_count::checked_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return specmatch::alloc_count::checked_aligned(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return specmatch::alloc_count::checked_aligned(
      size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  specmatch::alloc_count::note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  specmatch::alloc_count::note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
