#include "workload/io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace specmatch::workload {

namespace {

constexpr const char* kMagic = "specmatch-scenario v1";

[[noreturn]] void fail(const std::string& message) {
  throw ScenarioParseError("scenario parse error: " + message);
}

std::string expect_keyword_line(std::istream& is, const std::string& what) {
  std::string line;
  if (!std::getline(is, line)) fail("unexpected end of input, wanted " + what);
  return line;
}

/// Reads "<keyword> <count>" and returns count.
int expect_counted(std::istream& is, const std::string& keyword) {
  std::istringstream line(expect_keyword_line(is, keyword));
  std::string word;
  int count = 0;
  if (!(line >> word >> count) || word != keyword || count <= 0)
    fail("expected '" + keyword + " <positive count>'");
  return count;
}

}  // namespace

void save_scenario(std::ostream& os, const market::Scenario& scenario) {
  scenario.validate();
  os << kMagic << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);

  os << "sellers " << scenario.seller_channel_counts.size() << '\n';
  for (std::size_t i = 0; i < scenario.seller_channel_counts.size(); ++i)
    os << scenario.seller_channel_counts[i]
       << (i + 1 < scenario.seller_channel_counts.size() ? ' ' : '\n');

  os << "buyers " << scenario.buyer_demands.size() << '\n';
  for (std::size_t i = 0; i < scenario.buyer_demands.size(); ++i)
    os << scenario.buyer_demands[i]
       << (i + 1 < scenario.buyer_demands.size() ? ' ' : '\n');

  os << "locations\n";
  for (const auto& loc : scenario.buyer_locations)
    os << loc.x << ' ' << loc.y << '\n';

  os << "ranges " << scenario.channel_ranges.size() << '\n';
  for (std::size_t i = 0; i < scenario.channel_ranges.size(); ++i)
    os << scenario.channel_ranges[i]
       << (i + 1 < scenario.channel_ranges.size() ? ' ' : '\n');

  if (!scenario.channel_reserves.empty()) {
    os << "reserves " << scenario.channel_reserves.size() << '\n';
    for (std::size_t i = 0; i < scenario.channel_reserves.size(); ++i)
      os << scenario.channel_reserves[i]
         << (i + 1 < scenario.channel_reserves.size() ? ' ' : '\n');
  }

  const auto M = static_cast<std::size_t>(scenario.num_channels());
  const auto N = static_cast<std::size_t>(scenario.num_virtual_buyers());
  os << "utilities " << M << ' ' << N << '\n';
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t j = 0; j < N; ++j)
      os << scenario.utilities[i * N + j] << (j + 1 < N ? ' ' : '\n');
  }
}

market::Scenario load_scenario(std::istream& is) {
  if (expect_keyword_line(is, "magic header") != kMagic)
    fail(std::string("missing header '") + kMagic + "'");

  market::Scenario scenario;

  const int num_sellers = expect_counted(is, "sellers");
  scenario.seller_channel_counts.resize(static_cast<std::size_t>(num_sellers));
  for (auto& m : scenario.seller_channel_counts)
    if (!(is >> m)) fail("truncated seller channel counts");

  is >> std::ws;
  const int num_buyers = expect_counted(is, "buyers");
  scenario.buyer_demands.resize(static_cast<std::size_t>(num_buyers));
  for (auto& n : scenario.buyer_demands)
    if (!(is >> n)) fail("truncated buyer demands");

  is >> std::ws;
  if (expect_keyword_line(is, "locations") != "locations")
    fail("expected 'locations'");
  scenario.buyer_locations.resize(static_cast<std::size_t>(num_buyers));
  for (auto& loc : scenario.buyer_locations)
    if (!(is >> loc.x >> loc.y)) fail("truncated buyer locations");

  is >> std::ws;
  const int num_ranges = expect_counted(is, "ranges");
  scenario.channel_ranges.resize(static_cast<std::size_t>(num_ranges));
  for (auto& r : scenario.channel_ranges)
    if (!(is >> r)) fail("truncated channel ranges");

  is >> std::ws;
  {
    // Optional "reserves <M>" section (format extension; absent in files
    // written before reserve prices existed).
    std::string header = expect_keyword_line(is, "reserves or utilities");
    if (header.rfind("reserves", 0) == 0) {
      std::istringstream line(header);
      std::string word;
      std::size_t count = 0;
      if (!(line >> word >> count) || count == 0)
        fail("expected 'reserves <positive count>'");
      scenario.channel_reserves.resize(count);
      for (auto& r : scenario.channel_reserves)
        if (!(is >> r)) fail("truncated channel reserves");
      is >> std::ws;
      header = expect_keyword_line(is, "utilities");
    }
    std::istringstream line(header);
    std::string word;
    std::size_t M = 0, N = 0;
    if (!(line >> word >> M >> N) || word != "utilities" || M == 0 || N == 0)
      fail("expected 'utilities <M> <N>'");
    scenario.utilities.resize(M * N);
    for (auto& u : scenario.utilities)
      if (!(is >> u)) fail("truncated utility matrix");
  }

  try {
    scenario.validate();
  } catch (const CheckError& e) {
    fail(std::string("inconsistent scenario: ") + e.what());
  }
  return scenario;
}

void save_scenario_file(const std::string& path,
                        const market::Scenario& scenario) {
  std::ofstream os(path);
  SPECMATCH_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  save_scenario(os, scenario);
  SPECMATCH_CHECK_MSG(os.good(), "write to " << path << " failed");
}

market::Scenario load_scenario_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) fail("cannot open " + path);
  return load_scenario(is);
}

}  // namespace specmatch::workload
