#include "workload/io.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace specmatch::workload {

namespace {

constexpr const char* kMagic = "specmatch-scenario v1";

/// Line-tracking tokenizer over the input stream. Values may be laid out
/// with any whitespace (the writer packs a section per line, hand-written
/// fixtures put one value per line; both parse), but section headers must
/// start on a fresh line and every parse error is attributed to the 1-based
/// line it occurred on — the serve protocol embeds scenarios mid-stream and
/// reports errors in request-file coordinates via the line offset.
class TokenReader {
 public:
  TokenReader(std::istream& is, int line_offset)
      : is_(is), line_(line_offset) {}

  int line() const { return line_; }

  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream what;
    what << "scenario parse error: " << message << " (line " << line_ << ")";
    throw ScenarioParseError(what.str(), line_);
  }

  /// Unconsumed tokens left on the current line?
  bool line_has_more() {
    while (pos_ < current_.size() &&
           std::isspace(static_cast<unsigned char>(current_[pos_])))
      ++pos_;
    return pos_ < current_.size();
  }

  /// Advances to the next line; false at end of input.
  bool next_line() {
    if (!std::getline(is_, current_)) return false;
    ++line_;
    pos_ = 0;
    return true;
  }

  /// Next whitespace-delimited token, reading further lines as needed.
  bool next_token(std::string& out) {
    while (!line_has_more())
      if (!next_line()) return false;
    const std::size_t start = pos_;
    while (pos_ < current_.size() &&
           !std::isspace(static_cast<unsigned char>(current_[pos_])))
      ++pos_;
    out = current_.substr(start, pos_ - start);
    return true;
  }

  /// Next token parsed as T; the whole token must convert.
  template <typename T>
  void next_value(T& out, const std::string& what) {
    std::string token;
    if (!next_token(token)) fail("truncated " + what);
    std::istringstream ss(token);
    ss >> out;
    if (ss.fail() || !ss.eof())
      fail("malformed value '" + token + "' in " + what);
  }

  /// Starts a section: the previous one must be fully consumed and the
  /// header ("<keyword>" or "<keyword> <count...>") must sit on its own
  /// fresh line. Returns the header's whitespace-split tokens.
  std::vector<std::string> header_line(const std::string& wanted) {
    if (line_has_more())
      fail("trailing values before '" + wanted + "' header");
    if (!next_line()) fail("unexpected end of input, wanted '" + wanted + "'");
    std::vector<std::string> tokens;
    std::istringstream ss(current_);
    std::string token;
    while (ss >> token) tokens.push_back(token);
    pos_ = current_.size();  // the header line is consumed as a unit
    if (tokens.empty()) fail("blank line where '" + wanted + "' expected");
    return tokens;
  }

  /// Reads "<keyword> <positive count>" on its own line.
  int counted_header(const std::string& keyword) {
    const auto tokens = header_line(keyword + " <count>");
    if (tokens.size() != 2 || tokens[0] != keyword)
      fail("expected '" + keyword + " <positive count>', got '" + tokens[0] +
           "'");
    int count = 0;
    std::istringstream ss(tokens[1]);
    ss >> count;
    if (ss.fail() || !ss.eof() || count <= 0)
      fail("expected '" + keyword + " <positive count>', got count '" +
           tokens[1] + "'");
    return count;
  }

 private:
  std::istream& is_;
  int line_;
  std::string current_;
  std::size_t pos_ = 0;
};

}  // namespace

void save_scenario(std::ostream& os, const market::Scenario& scenario) {
  scenario.validate();
  os << kMagic << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);

  os << "sellers " << scenario.seller_channel_counts.size() << '\n';
  for (std::size_t i = 0; i < scenario.seller_channel_counts.size(); ++i)
    os << scenario.seller_channel_counts[i]
       << (i + 1 < scenario.seller_channel_counts.size() ? ' ' : '\n');

  os << "buyers " << scenario.buyer_demands.size() << '\n';
  for (std::size_t i = 0; i < scenario.buyer_demands.size(); ++i)
    os << scenario.buyer_demands[i]
       << (i + 1 < scenario.buyer_demands.size() ? ' ' : '\n');

  os << "locations\n";
  for (const auto& loc : scenario.buyer_locations)
    os << loc.x << ' ' << loc.y << '\n';

  os << "ranges " << scenario.channel_ranges.size() << '\n';
  for (std::size_t i = 0; i < scenario.channel_ranges.size(); ++i)
    os << scenario.channel_ranges[i]
       << (i + 1 < scenario.channel_ranges.size() ? ' ' : '\n');

  if (!scenario.channel_reserves.empty()) {
    os << "reserves " << scenario.channel_reserves.size() << '\n';
    for (std::size_t i = 0; i < scenario.channel_reserves.size(); ++i)
      os << scenario.channel_reserves[i]
         << (i + 1 < scenario.channel_reserves.size() ? ' ' : '\n');
  }

  const auto M = static_cast<std::size_t>(scenario.num_channels());
  const auto N = static_cast<std::size_t>(scenario.num_virtual_buyers());
  os << "utilities " << M << ' ' << N << '\n';
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t j = 0; j < N; ++j)
      os << scenario.utilities[i * N + j] << (j + 1 < N ? ' ' : '\n');
  }
}

market::Scenario load_scenario(std::istream& is) {
  return load_scenario(is, 0, nullptr);
}

market::Scenario load_scenario(std::istream& is, int line_offset,
                               int* lines_consumed) {
  TokenReader reader(is, line_offset);

  if (!reader.next_line())
    reader.fail(std::string("missing header '") + kMagic + "'");
  {
    std::string magic;
    std::string token;
    while (reader.line_has_more()) {
      reader.next_token(token);
      magic += magic.empty() ? token : " " + token;
    }
    if (magic != kMagic)
      reader.fail(std::string("missing header '") + kMagic + "'");
  }

  market::Scenario scenario;

  const int num_sellers = reader.counted_header("sellers");
  scenario.seller_channel_counts.resize(static_cast<std::size_t>(num_sellers));
  for (auto& m : scenario.seller_channel_counts)
    reader.next_value(m, "seller channel counts");

  const int num_buyers = reader.counted_header("buyers");
  scenario.buyer_demands.resize(static_cast<std::size_t>(num_buyers));
  for (auto& n : scenario.buyer_demands)
    reader.next_value(n, "buyer demands");

  {
    const auto tokens = reader.header_line("locations");
    if (tokens.size() != 1 || tokens[0] != "locations")
      reader.fail("expected 'locations', got '" + tokens[0] + "'");
  }
  scenario.buyer_locations.resize(static_cast<std::size_t>(num_buyers));
  for (auto& loc : scenario.buyer_locations) {
    reader.next_value(loc.x, "buyer locations");
    reader.next_value(loc.y, "buyer locations");
  }

  const int num_ranges = reader.counted_header("ranges");
  scenario.channel_ranges.resize(static_cast<std::size_t>(num_ranges));
  for (auto& r : scenario.channel_ranges)
    reader.next_value(r, "channel ranges");

  // Optional "reserves <M>" section (format extension; absent in files
  // written before reserve prices existed), then the mandatory utilities
  // matrix. Duplicated sections are rejected explicitly rather than left to
  // cascade into a confusing downstream keyword mismatch.
  bool have_reserves = false;
  std::size_t M = 0;
  std::size_t N = 0;
  while (true) {
    const auto tokens = reader.header_line("reserves or utilities");
    if (tokens[0] == "reserves") {
      if (have_reserves) reader.fail("duplicate 'reserves' section");
      std::size_t count = 0;
      std::istringstream ss(tokens.size() == 2 ? tokens[1] : "");
      ss >> count;
      if (tokens.size() != 2 || ss.fail() || !ss.eof() || count == 0)
        reader.fail("expected 'reserves <positive count>'");
      scenario.channel_reserves.resize(count);
      for (auto& r : scenario.channel_reserves)
        reader.next_value(r, "channel reserves");
      have_reserves = true;
      continue;
    }
    if (tokens[0] == "utilities") {
      std::istringstream m_ss(tokens.size() == 3 ? tokens[1] : "");
      std::istringstream n_ss(tokens.size() == 3 ? tokens[2] : "");
      m_ss >> M;
      n_ss >> N;
      if (tokens.size() != 3 || m_ss.fail() || !m_ss.eof() || n_ss.fail() ||
          !n_ss.eof() || M == 0 || N == 0)
        reader.fail("expected 'utilities <M> <N>'");
      break;
    }
    reader.fail("expected 'reserves' or 'utilities', got '" + tokens[0] + "'");
  }
  scenario.utilities.resize(M * N);
  for (auto& u : scenario.utilities)
    reader.next_value(u, "utility matrix");
  if (reader.line_has_more())
    reader.fail("trailing values after the utility matrix");

  try {
    scenario.validate();
  } catch (const CheckError& e) {
    reader.fail(std::string("inconsistent scenario: ") + e.what());
  }
  if (lines_consumed != nullptr)
    *lines_consumed = reader.line() - line_offset;
  return scenario;
}

void save_scenario_file(const std::string& path,
                        const market::Scenario& scenario) {
  std::ofstream os(path);
  SPECMATCH_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  save_scenario(os, scenario);
  SPECMATCH_CHECK_MSG(os.good(), "write to " << path << " failed");
}

market::Scenario load_scenario_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good())
    throw ScenarioParseError("scenario parse error: cannot open " + path);
  return load_scenario(is);
}

}  // namespace specmatch::workload
