// Scenario (de)serialisation — a small line-oriented text format so
// experiments can be archived, diffed and replayed bit-for-bit.
//
//   specmatch-scenario v1
//   sellers <I>            followed by I channel counts m_i
//   buyers <J>             followed by J demands n_j
//   locations              followed by J "x y" lines
//   ranges <M>             followed by M transmission ranges
//   utilities <M> <N>      followed by M lines of N prices (channel-major)
//
// Doubles are emitted with max_digits10, so save -> load round-trips
// exactly.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "market/scenario.hpp"

namespace specmatch::workload {

/// Thrown by load_scenario on malformed input. The message always carries
/// the 1-based line number of the offending line ("... (line 7)"), also
/// exposed structurally via line(); 0 means the failure is not attributable
/// to a line (e.g. an unopenable file).
class ScenarioParseError : public std::runtime_error {
 public:
  explicit ScenarioParseError(const std::string& what, int line = 0)
      : std::runtime_error(what), line_(line) {}

  int line() const { return line_; }

 private:
  int line_ = 0;
};

void save_scenario(std::ostream& os, const market::Scenario& scenario);
market::Scenario load_scenario(std::istream& is);

/// As load_scenario, but line numbers in errors (and the final reader
/// position) are offset by `line_offset` lines already consumed from the
/// surrounding stream — the serve protocol embeds scenarios mid-stream and
/// wants errors in request-file coordinates. On success *lines_consumed
/// (when non-null) receives the number of lines the scenario occupied.
market::Scenario load_scenario(std::istream& is, int line_offset,
                               int* lines_consumed);

/// Convenience file wrappers (throw on I/O failure).
void save_scenario_file(const std::string& path,
                        const market::Scenario& scenario);
market::Scenario load_scenario_file(const std::string& path);

}  // namespace specmatch::workload
