// Scenario (de)serialisation — a small line-oriented text format so
// experiments can be archived, diffed and replayed bit-for-bit.
//
//   specmatch-scenario v1
//   sellers <I>            followed by I channel counts m_i
//   buyers <J>             followed by J demands n_j
//   locations              followed by J "x y" lines
//   ranges <M>             followed by M transmission ranges
//   utilities <M> <N>      followed by M lines of N prices (channel-major)
//
// Doubles are emitted with max_digits10, so save -> load round-trips
// exactly.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "market/scenario.hpp"

namespace specmatch::workload {

/// Thrown by load_scenario on malformed input (with a line-level message).
class ScenarioParseError : public std::runtime_error {
 public:
  explicit ScenarioParseError(const std::string& what)
      : std::runtime_error(what) {}
};

void save_scenario(std::ostream& os, const market::Scenario& scenario);
market::Scenario load_scenario(std::istream& is);

/// Convenience file wrappers (throw on I/O failure).
void save_scenario_file(const std::string& path,
                        const market::Scenario& scenario);
market::Scenario load_scenario_file(const std::string& path);

}  // namespace specmatch::workload
