// The paper's price-similarity maneuver (§V-A).
//
// To sweep similarity, every buyer's utility vector is first sorted into a
// common (ascending) order — mean pairwise SRCC 1 — then m randomly chosen
// entries are permuted. m = 0 keeps perfect similarity; m = M makes vectors
// effectively independent (SRCC ≈ 0).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace specmatch::workload {

/// In-place similarity maneuvering of a channel-major M x N utility matrix
/// (utilities[i * N + j] = b_{i,j}): sorts each buyer's vector ascending,
/// then applies an independent random m-permutation per buyer.
/// Requires 0 <= m_permutation <= M.
void apply_similarity_maneuver(std::vector<double>& utilities, int M, int N,
                               int m_permutation, Rng& rng);

/// Mean pairwise Spearman rank correlation over buyers' utility vectors
/// (channel-major input, as above).
double mean_similarity(const std::vector<double>& utilities, int M, int N);

}  // namespace specmatch::workload
