// Random market generation per the paper's simulation settings (§V-A):
// buyers uniform in a 10 x 10 area, per-channel transmission range uniform in
// (0, 5], geometric interference graphs, i.i.d. U[0, 1] utilities, optional
// similarity maneuvering, and optional multi-channel supply / demand
// (virtualised into dummies per §II-A).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "market/scenario.hpp"

namespace specmatch::workload {

/// How parent buyers are placed in the deployment area.
enum class PlacementModel : std::uint8_t {
  kUniform,    ///< the paper's setting: i.i.d. uniform over the area
  kClustered,  ///< hotspots: Gaussian blobs around random cluster centres
};

struct WorkloadParams {
  int num_sellers = 5;  ///< parent sellers
  int num_buyers = 8;   ///< parent buyers

  /// Channels per seller / demanded channels per buyer, uniform integers in
  /// the inclusive range. Defaults give the paper's one-dummy-each markets
  /// where M = num_sellers and N = num_buyers.
  int min_channels_per_seller = 1;
  int max_channels_per_seller = 1;
  int min_demand_per_buyer = 1;
  int max_demand_per_buyer = 1;

  double area_size = 10.0;
  double max_range = 5.0;  ///< ranges drawn uniform in (0, max_range]
  /// Optional lower bound for the range draw (still exclusive at 0); the
  /// paper uses (0, 5]. Raising it densifies every interference graph.
  double min_range = 0.0;

  /// Per-channel seller reserve prices drawn uniform in [0, max_reserve]
  /// (extension; 0 = the paper's free participation).
  double max_reserve = 0.0;

  /// Buyer placement (extension; the paper is kUniform).
  PlacementModel placement = PlacementModel::kUniform;
  int num_clusters = 3;          ///< kClustered: number of hotspots
  double cluster_stddev = 1.0;   ///< kClustered: spread around a hotspot

  /// m of the similarity m-permutation (§V-A): 0 = perfectly similar
  /// (SRCC 1), M = effectively independent. kIidUtilities (-1) skips the
  /// maneuver entirely and keeps the raw i.i.d. draws.
  int similarity_permutation = kIidUtilities;

  static constexpr int kIidUtilities = -1;
};

/// Draws a full scenario (topology, ranges, utilities) from `params`.
market::Scenario generate_scenario(const WorkloadParams& params, Rng& rng);

/// Convenience: generate_scenario then build_market.
market::SpectrumMarket generate_market(const WorkloadParams& params, Rng& rng);

}  // namespace specmatch::workload
