#include "workload/similarity.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace specmatch::workload {

void apply_similarity_maneuver(std::vector<double>& utilities, int M, int N,
                               int m_permutation, Rng& rng) {
  SPECMATCH_CHECK(M > 0 && N > 0);
  SPECMATCH_CHECK(utilities.size() ==
                  static_cast<std::size_t>(M) * static_cast<std::size_t>(N));
  SPECMATCH_CHECK_MSG(m_permutation >= 0 && m_permutation <= M,
                      "m-permutation size " << m_permutation
                                            << " out of [0, " << M << "]");

  std::vector<double> vec(static_cast<std::size_t>(M));
  std::vector<int> positions(static_cast<std::size_t>(M));
  for (int j = 0; j < N; ++j) {
    // Gather buyer j's (strided) utility vector and sort ascending so all
    // buyers agree on the channel order.
    for (int i = 0; i < M; ++i)
      vec[static_cast<std::size_t>(i)] =
          utilities[static_cast<std::size_t>(i) * static_cast<std::size_t>(N) +
                    static_cast<std::size_t>(j)];
    std::sort(vec.begin(), vec.end());

    // Pick m positions uniformly without replacement and cyclically rotate
    // the values through a random shuffle.
    for (int i = 0; i < M; ++i) positions[static_cast<std::size_t>(i)] = i;
    rng.shuffle(positions);
    std::vector<int> chosen(positions.begin(),
                            positions.begin() + m_permutation);
    std::vector<double> values;
    values.reserve(chosen.size());
    for (int p : chosen) values.push_back(vec[static_cast<std::size_t>(p)]);
    rng.shuffle(values);
    for (std::size_t k = 0; k < chosen.size(); ++k)
      vec[static_cast<std::size_t>(chosen[k])] = values[k];

    for (int i = 0; i < M; ++i)
      utilities[static_cast<std::size_t>(i) * static_cast<std::size_t>(N) +
                static_cast<std::size_t>(j)] =
          vec[static_cast<std::size_t>(i)];
  }
}

double mean_similarity(const std::vector<double>& utilities, int M, int N) {
  SPECMATCH_CHECK(M > 0 && N > 0);
  SPECMATCH_CHECK(utilities.size() ==
                  static_cast<std::size_t>(M) * static_cast<std::size_t>(N));
  // Re-lay out buyer-major for pairwise row comparisons.
  std::vector<double> rows(utilities.size());
  for (int j = 0; j < N; ++j)
    for (int i = 0; i < M; ++i)
      rows[static_cast<std::size_t>(j) * static_cast<std::size_t>(M) +
           static_cast<std::size_t>(i)] =
          utilities[static_cast<std::size_t>(i) * static_cast<std::size_t>(N) +
                    static_cast<std::size_t>(j)];
  return mean_pairwise_spearman(rows, static_cast<std::size_t>(M));
}

}  // namespace specmatch::workload
