#include "workload/generator.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "workload/similarity.hpp"

namespace specmatch::workload {

market::Scenario generate_scenario(const WorkloadParams& params, Rng& rng) {
  SPECMATCH_CHECK(params.num_sellers > 0);
  SPECMATCH_CHECK(params.num_buyers > 0);
  SPECMATCH_CHECK(params.min_channels_per_seller >= 1 &&
                  params.min_channels_per_seller <=
                      params.max_channels_per_seller);
  SPECMATCH_CHECK(params.min_demand_per_buyer >= 1 &&
                  params.min_demand_per_buyer <= params.max_demand_per_buyer);
  SPECMATCH_CHECK(params.area_size > 0.0);
  SPECMATCH_CHECK(params.max_range > 0.0);
  SPECMATCH_CHECK(params.min_range >= 0.0 &&
                  params.min_range < params.max_range);
  SPECMATCH_CHECK(params.num_clusters > 0);
  SPECMATCH_CHECK(params.cluster_stddev >= 0.0);

  // Hotspot centres for clustered placement (drawn up front so buyer
  // positions are a pure function of the parameters and the stream).
  std::vector<graph::Point> centres;
  if (params.placement == PlacementModel::kClustered) {
    centres.reserve(static_cast<std::size_t>(params.num_clusters));
    for (int c = 0; c < params.num_clusters; ++c)
      centres.push_back({rng.uniform(0.0, params.area_size),
                         rng.uniform(0.0, params.area_size)});
  }
  auto draw_location = [&]() -> graph::Point {
    if (params.placement == PlacementModel::kUniform) {
      return {rng.uniform(0.0, params.area_size),
              rng.uniform(0.0, params.area_size)};
    }
    const auto& centre = centres[static_cast<std::size_t>(rng.uniform_int(
        0, params.num_clusters - 1))];
    return {std::clamp(centre.x + rng.normal(0.0, params.cluster_stddev),
                       0.0, params.area_size),
            std::clamp(centre.y + rng.normal(0.0, params.cluster_stddev),
                       0.0, params.area_size)};
  };

  market::Scenario scenario;
  scenario.seller_channel_counts.reserve(
      static_cast<std::size_t>(params.num_sellers));
  for (int s = 0; s < params.num_sellers; ++s)
    scenario.seller_channel_counts.push_back(
        static_cast<int>(rng.uniform_int(params.min_channels_per_seller,
                                         params.max_channels_per_seller)));
  scenario.buyer_demands.reserve(static_cast<std::size_t>(params.num_buyers));
  scenario.buyer_locations.reserve(
      static_cast<std::size_t>(params.num_buyers));
  for (int b = 0; b < params.num_buyers; ++b) {
    scenario.buyer_demands.push_back(static_cast<int>(rng.uniform_int(
        params.min_demand_per_buyer, params.max_demand_per_buyer)));
    scenario.buyer_locations.push_back(draw_location());
  }

  const int M = scenario.num_channels();
  const int N = scenario.num_virtual_buyers();

  scenario.channel_ranges.reserve(static_cast<std::size_t>(M));
  for (int i = 0; i < M; ++i) {
    // uniform() is in [0, 1); mirror it so the range lands in (min, max].
    scenario.channel_ranges.push_back(
        params.min_range +
        (params.max_range - params.min_range) * (1.0 - rng.uniform()));
  }

  SPECMATCH_CHECK(params.max_reserve >= 0.0);
  if (params.max_reserve > 0.0) {
    scenario.channel_reserves.reserve(static_cast<std::size_t>(M));
    for (int i = 0; i < M; ++i)
      scenario.channel_reserves.push_back(
          rng.uniform(0.0, params.max_reserve));
  }

  scenario.utilities.resize(static_cast<std::size_t>(M) *
                            static_cast<std::size_t>(N));
  for (auto& u : scenario.utilities) u = rng.uniform();
  if (params.similarity_permutation != WorkloadParams::kIidUtilities) {
    SPECMATCH_CHECK_MSG(params.similarity_permutation <= M,
                        "m-permutation " << params.similarity_permutation
                                         << " exceeds M = " << M);
    apply_similarity_maneuver(scenario.utilities, M, N,
                              params.similarity_permutation, rng);
  }

  scenario.validate();
  return scenario;
}

market::SpectrumMarket generate_market(const WorkloadParams& params,
                                       Rng& rng) {
  return market::build_market(generate_scenario(params, rng));
}

}  // namespace specmatch::workload
