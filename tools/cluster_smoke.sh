#!/usr/bin/env bash
# cluster_smoke: pins the cluster serving contract (docs/CLUSTER.md).
#
# Boots a coordinator in front of {1, 2, 4} loopback workers (worker drain
# lanes {1, 4}) and replays tools/cluster_smoke.req + cluster_smoke_tail.req
# over TCP; every transcript must be byte-identical to the in-process
# `specmatch_cli serve FILE` transcript of the same concatenated stream.
# The request mix splits and re-merges placement supergroups, so at 2+
# workers the cross-worker migration path runs (asserted via the
# coordinator's final stats line). A separate leg SIGKILLs one of two
# workers between the phases and requires the phase-two transcript to stay
# byte-identical anyway — with the coordinator reporting the death and the
# consolidation.
#
# The same script is the TSan leg: run it from a
# `-DSPECMATCH_SANITIZE=thread` build tree and the sanitizer covers every
# process it spawns (README "Sanitizers").
#
# Usage: cluster_smoke.sh <path-to-specmatch_cli> <tools-dir>
set -euo pipefail

CLI="$1"
HERE="$2"
REQ="$HERE/cluster_smoke.req"
TAIL_REQ="$HERE/cluster_smoke_tail.req"
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

cat "$REQ" "$TAIL_REQ" > "$TMP/full.req"

# The reference transcript: the in-process replay path.
"$CLI" serve "$TMP/full.req" --out "$TMP/ref.out" 2>/dev/null
# The phase split (in response lines) for the worker-kill leg.
"$CLI" serve "$REQ" --out "$TMP/ref_head.out" 2>/dev/null
head_lines="$(wc -l < "$TMP/ref_head.out")"
total_lines="$(wc -l < "$TMP/ref.out")"
if ! head -n "$head_lines" "$TMP/ref.out" | cmp -s - "$TMP/ref_head.out"; then
  echo "FAIL: phase-one reference is not a prefix of the full reference" >&2
  exit 1
fi

wait_for_port() { # <port-file>
  for _ in $(seq 1 200); do
    [[ -s "$1" ]] && return 0
    sleep 0.05
  done
  echo "FAIL: server never wrote its port file" >&2
  exit 1
}

boot_workers() { # <count> <lanes> -> sets ports= and appends to PIDS
  ports=""
  for w in $(seq 1 "$1"); do
    rm -f "$TMP/w$w.port"
    SPECMATCH_THREADS="$2" SPECMATCH_SERVE_THREADS="$2" \
      "$CLI" serve --listen 0 --worker --port-file "$TMP/w$w.port" \
      2>"$TMP/w$w.err" &
    PIDS+=($!)
    wait_for_port "$TMP/w$w.port"
    ports="$ports,$(cat "$TMP/w$w.port")"
  done
  ports="${ports#,}"
}

stop_all() {
  for pid in "${PIDS[@]:-}"; do
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  PIDS=()
}

# --- transcript identity at workers {1,2,4} x worker lanes {1,4} ------------
migrations_total=0
for workers in 1 2 4; do
  for lanes in 1 4; do
    tag="w${workers}_l${lanes}"
    boot_workers "$workers" "$lanes"
    rm -f "$TMP/coord.port"
    "$CLI" serve --listen 0 --coordinator --workers "$ports" \
      --port-file "$TMP/coord.port" 2>"$TMP/$tag.coord.err" &
    PIDS+=($!)
    COORD_PID=$!
    wait_for_port "$TMP/coord.port"

    "$CLI" serve "$TMP/full.req" --connect "$(cat "$TMP/coord.port")" \
      --conns 2 --out "$TMP/$tag.out" 2>/dev/null

    kill -TERM "$COORD_PID"
    wait "$COORD_PID" || {
      echo "FAIL: $tag coordinator exited nonzero:" >&2
      cat "$TMP/$tag.coord.err" >&2
      exit 1
    }
    stop_all

    if ! cmp -s "$TMP/ref.out" "$TMP/$tag.out"; then
      echo "FAIL: $tag cluster transcript diverged from the in-process path:" >&2
      diff "$TMP/ref.out" "$TMP/$tag.out" >&2 || true
      exit 1
    fi
    stats_line="$(grep 'serve: cluster' "$TMP/$tag.coord.err")"
    live="$(sed -nE 's/.* live=([0-9]+).*/\1/p' <<< "$stats_line")"
    if [[ "$live" != "$workers" ]]; then
      echo "FAIL: $tag lost a worker without being killed: $stats_line" >&2
      exit 1
    fi
    migrations_total=$((migrations_total + $(sed -nE \
        's/.* migrations=([0-9]+).*/\1/p' <<< "$stats_line")))
  done
done
if [[ "$migrations_total" -eq 0 ]]; then
  echo "FAIL: no run migrated state across workers (stream too tame?)" >&2
  exit 1
fi

# --- kill one of two workers between the phases ------------------------------
boot_workers 2 1
victim="${PIDS[0]}"
rm -f "$TMP/coord.port"
"$CLI" serve --listen 0 --coordinator --workers "$ports" \
  --port-file "$TMP/coord.port" 2>"$TMP/kill.coord.err" &
PIDS+=($!)
COORD_PID=$!
wait_for_port "$TMP/coord.port"
coord_port="$(cat "$TMP/coord.port")"

"$CLI" serve "$REQ" --connect "$coord_port" --out "$TMP/kill.head.out" \
  2>/dev/null
kill -KILL "$victim"
wait "$victim" 2>/dev/null || true
"$CLI" serve "$TAIL_REQ" --connect "$coord_port" --out "$TMP/kill.tail.out" \
  2>/dev/null

kill -TERM "$COORD_PID"
wait "$COORD_PID" || {
  echo "FAIL: coordinator exited nonzero after the worker kill:" >&2
  cat "$TMP/kill.coord.err" >&2
  exit 1
}
stop_all

if ! cmp -s "$TMP/ref_head.out" "$TMP/kill.head.out"; then
  echo "FAIL: pre-kill transcript diverged:" >&2
  diff "$TMP/ref_head.out" "$TMP/kill.head.out" >&2 || true
  exit 1
fi
if ! tail -n "$((total_lines - head_lines))" "$TMP/ref.out" \
    | cmp -s - "$TMP/kill.tail.out"; then
  echo "FAIL: post-kill transcript diverged from the in-process path:" >&2
  tail -n "$((total_lines - head_lines))" "$TMP/ref.out" \
    | diff - "$TMP/kill.tail.out" >&2 || true
  exit 1
fi
stats_line="$(grep 'serve: cluster' "$TMP/kill.coord.err")"
if ! grep -q ' live=1 ' <<< "$stats_line"; then
  echo "FAIL: coordinator never noticed the killed worker: $stats_line" >&2
  exit 1
fi

echo "cluster_smoke OK: transcripts identical to in-process at workers {1,2,4} x lanes {1,4} (migrations=$migrations_total), and byte-identical through a worker kill"
