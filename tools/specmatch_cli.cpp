// specmatch command-line driver.
//
//   specmatch_cli generate --sellers 5 --buyers 12 [--seed 1]
//                          [--similarity m] [--max-range 5.0]
//                          [--supply-max 1] [--demand-max 1] --out FILE
//   specmatch_cli info FILE
//   specmatch_cli run FILE [--mechanism two-stage|swaps|auction|optimal|
//                           greedy|random] [--seed 1]
//   specmatch_cli dist FILE [--rule default|adaptive|quiescence]
//                           [--delay D] [--window W]
//
// Scenarios use the text format of workload/io.hpp, so generated markets can
// be archived and replayed bit-for-bit.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "auction/group_auction.hpp"
#include "dist/runtime.hpp"
#include "serve/cluster/coordinator.hpp"
#include "serve/net_client.hpp"
#include "serve/net_server.hpp"
#include "serve/server.hpp"
#include "matching/export_dot.hpp"
#include "matching/paper_examples.hpp"
#include "matching/stability.hpp"
#include "matching/swap_resolution.hpp"
#include "matching/two_stage.hpp"
#include "optimal/exact.hpp"
#include "optimal/greedy.hpp"
#include "optimal/random_matcher.hpp"
#include "workload/generator.hpp"
#include "workload/io.hpp"
#include "workload/similarity.hpp"

namespace {

using namespace specmatch;

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage:\n"
      "  specmatch_cli generate --sellers I --buyers J [--seed S]\n"
      "                [--similarity m] [--max-range R] [--min-range R]\n"
      "                [--supply-max K] [--demand-max K] --out FILE\n"
      "  specmatch_cli info FILE\n"
      "  specmatch_cli run FILE [--mechanism two-stage|swaps|auction|\n"
      "                optimal|greedy|random] [--seed S]\n"
      "  specmatch_cli dist FILE [--rule default|adaptive|quiescence]\n"
      "                [--delay D] [--window W]\n"
      "  specmatch_cli dot FILE [--out FILE.dot]   (matching as graphviz)\n"
      "  specmatch_cli paper toy|counter           (run the paper's fixtures)\n"
      "  specmatch_cli serve [FILE] [--out FILE] [--store DIR]\n"
      "                (request file or stdin; --store enables the snapshot\n"
      "                store: spill-on-evict, snapshot/restore verbs, cold\n"
      "                boot from DIR. docs/SERVING.md, docs/PERSISTENCE.md)\n"
      "  specmatch_cli serve --listen PORT [--port-file F] [--store DIR]\n"
      "                [--overflow block|reject]   (TCP front-end on\n"
      "                127.0.0.1; port 0 = ephemeral, choice written to\n"
      "                --port-file; SIGTERM drains. docs/PROTOCOL.md)\n"
      "  specmatch_cli serve FILE --connect PORT [--conns N] [--out FILE]\n"
      "                (replay FILE over N connections; transcript in\n"
      "                request order)\n"
      "  specmatch_cli serve --listen PORT --worker   (cluster worker:\n"
      "                accepts the internal xsolve/xset/ximport/xdrop verbs.\n"
      "                docs/CLUSTER.md)\n"
      "  specmatch_cli serve [FILE] --coordinator --workers P1,P2,...\n"
      "                [--listen PORT] [--out FILE]   (cluster coordinator\n"
      "                fronting the workers on ports P1,P2,...; with\n"
      "                --listen it serves TCP, otherwise it replays FILE or\n"
      "                stdin. SPECMATCH_CLUSTER_WORKERS is the --workers\n"
      "                default. docs/CLUSTER.md)\n";
  std::exit(2);
}

/// Parses "--key value" pairs after the positional arguments.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start) {
  std::map<std::string, std::string> flags;
  for (int a = start; a < argc; ++a) {
    std::string key = argv[a];
    if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
    if (a + 1 >= argc) usage("flag " + key + " needs a value");
    flags[key.substr(2)] = argv[++a];
  }
  return flags;
}

int flag_int(const std::map<std::string, std::string>& flags,
             const std::string& key, int fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoi(it->second);
}

double flag_double(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

std::string flag_string(const std::map<std::string, std::string>& flags,
                        const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  workload::WorkloadParams params;
  params.num_sellers = flag_int(flags, "sellers", 5);
  params.num_buyers = flag_int(flags, "buyers", 8);
  params.max_channels_per_seller = flag_int(flags, "supply-max", 1);
  params.max_demand_per_buyer = flag_int(flags, "demand-max", 1);
  params.max_range = flag_double(flags, "max-range", 5.0);
  params.min_range = flag_double(flags, "min-range", 0.0);
  params.max_reserve = flag_double(flags, "max-reserve", 0.0);
  params.similarity_permutation =
      flag_int(flags, "similarity", workload::WorkloadParams::kIidUtilities);
  const auto out = flags.find("out");
  if (out == flags.end()) usage("generate requires --out FILE");

  Rng rng(static_cast<std::uint64_t>(flag_int(flags, "seed", 1)));
  const auto scenario = workload::generate_scenario(params, rng);
  workload::save_scenario_file(out->second, scenario);
  std::cout << "wrote " << out->second << " (M = " << scenario.num_channels()
            << ", N = " << scenario.num_virtual_buyers() << ")\n";
  return 0;
}

int cmd_info(const std::string& path) {
  const auto scenario = workload::load_scenario_file(path);
  const auto market = market::build_market(scenario);
  std::cout << "scenario " << path << "\n";
  std::cout << "  parent sellers: " << scenario.seller_channel_counts.size()
            << ", parent buyers: " << scenario.buyer_demands.size() << "\n";
  std::cout << "  virtual: M = " << market.num_channels()
            << " channels, N = " << market.num_buyers() << " buyers\n";
  std::cout << "  price similarity (mean SRCC): "
            << workload::mean_similarity(scenario.utilities,
                                         market.num_channels(),
                                         market.num_buyers())
            << "\n";
  for (ChannelId i = 0; i < market.num_channels(); ++i)
    std::cout << "  channel " << i << ": range "
              << scenario.channel_ranges[static_cast<std::size_t>(i)]
              << ", interference edges " << market.graph(i).num_edges()
              << "\n";
  return 0;
}

void report(const market::SpectrumMarket& market,
            const matching::Matching& matching, const std::string& name) {
  std::cout << name << ":\n";
  std::cout << "  welfare: " << matching.social_welfare(market) << "\n";
  std::cout << "  matched buyers: " << matching.num_matched() << " / "
            << market.num_buyers() << "\n";
  std::cout << "  individually rational: "
            << matching::is_individual_rational(market, matching)
            << ", Nash-stable: " << matching::is_nash_stable(market, matching)
            << ", pairwise-stable: "
            << matching::is_pairwise_stable(market, matching) << "\n";
  for (ChannelId i = 0; i < market.num_channels(); ++i) {
    std::cout << "  seller " << i << " <- {";
    bool first = true;
    matching.members_of(i).for_each_set([&](std::size_t j) {
      std::cout << (first ? "" : ", ") << j;
      first = false;
    });
    std::cout << "}\n";
  }
}

int cmd_run(const std::string& path,
            const std::map<std::string, std::string>& flags) {
  const auto market =
      market::build_market(workload::load_scenario_file(path));
  const std::string mechanism = flag_string(flags, "mechanism", "two-stage");
  if (mechanism == "two-stage") {
    const auto result = matching::run_two_stage(market);
    report(market, result.final_matching(), "two-stage matching");
    std::cout << "  welfare per phase: " << result.welfare_stage1 << " -> "
              << result.welfare_phase1 << " -> " << result.welfare_final
              << "\n";
  } else if (mechanism == "swaps") {
    const auto result = matching::run_two_stage_with_swaps(market);
    report(market, result.matching, "two-stage + stage-III swaps");
    std::cout << "  swaps applied: " << result.swaps_applied << " (welfare "
              << result.welfare_before << " -> " << result.welfare_after
              << ")\n";
  } else if (mechanism == "auction") {
    const auto result = auction::run_group_double_auction(market);
    report(market, result.matching, "group double auction");
    std::cout << "  revenue: " << result.seller_revenue
              << ", clearing price: " << result.clearing_price << "\n";
  } else if (mechanism == "optimal") {
    const auto result = optimal::solve_optimal(market);
    report(market, result.matching, "optimal (branch & bound)");
    std::cout << "  nodes explored: " << result.nodes_explored << "\n";
  } else if (mechanism == "greedy") {
    report(market, optimal::solve_greedy(market), "centralised greedy");
  } else if (mechanism == "random") {
    Rng rng(static_cast<std::uint64_t>(flag_int(flags, "seed", 1)));
    report(market, optimal::solve_random_serial(market, rng),
           "random serial dictatorship");
  } else {
    usage("unknown mechanism '" + mechanism + "'");
  }
  return 0;
}

int cmd_dist(const std::string& path,
             const std::map<std::string, std::string>& flags) {
  const auto market =
      market::build_market(workload::load_scenario_file(path));
  dist::DistConfig config;
  const std::string rule = flag_string(flags, "rule", "default");
  if (rule == "adaptive")
    config = dist::DistConfig::adaptive();
  else if (rule == "quiescence")
    config = dist::DistConfig::quiescence(flag_int(flags, "window", 3));
  else if (rule != "default")
    usage("unknown rule '" + rule + "'");
  config.max_message_delay = flag_int(flags, "delay", 0);

  const auto result = dist::run_distributed(market, config);
  report(market, result.matching, "distributed run (" + rule + ")");
  std::cout << "  slots: " << result.slots << " (stage I spanned "
            << result.last_stage1_slot + 1 << "), messages: "
            << result.messages << "\n";
  return 0;
}

/// Re-sequences responses into admission order: callbacks may fire from any
/// drain lane, but the transcript a replay produces must not depend on lane
/// scheduling. Responses are buffered until every earlier seq has been
/// emitted.
class TranscriptWriter {
 public:
  explicit TranscriptWriter(std::ostream& out) : out_(out) {}

  void write(const serve::Response& response) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffered_.emplace(response.seq, response.text);
    while (!buffered_.empty() && buffered_.begin()->first == next_) {
      out_ << buffered_.begin()->second << "\n";
      buffered_.erase(buffered_.begin());
      ++next_;
    }
  }

  bool fully_flushed() const { return buffered_.empty(); }

 private:
  std::ostream& out_;
  std::mutex mutex_;
  std::map<std::uint64_t, std::string> buffered_;
  std::uint64_t next_ = 0;
};

/// The shared --listen scaffolding: bind, publish the port via --port-file,
/// serve until SIGTERM, report the transport counters. Works for any sink —
/// a MatchServer or a cluster Coordinator.
void run_listener(serve::RequestSink& sink,
                  const std::map<std::string, std::string>& flags) {
  serve::NetConfig net = serve::NetConfig::from_env();
  net.port = flag_int(flags, "listen", 0);
  serve::NetServer listener(sink, net);
  const int port = listener.listen_on_loopback();
  const std::string port_file = flag_string(flags, "port-file", "");
  if (!port_file.empty()) {
    // Written to a temp name and renamed so a poller never reads a
    // partially written port number.
    const std::string tmp = port_file + ".tmp";
    std::ofstream pf(tmp);
    if (!pf.good()) usage("cannot open " + tmp);
    pf << port << "\n";
    pf.close();
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      usage("cannot rename " + tmp + " to " + port_file);
    }
  }
  listener.install_signal_handlers();
  std::cerr << "serve: listening on 127.0.0.1:" << port << "\n";
  listener.run();
  const serve::NetStats net_stats = listener.stats();
  std::cerr << "serve: net accepted=" << net_stats.accepted
            << " rejected=" << net_stats.rejected
            << " closed=" << net_stats.closed
            << " requests=" << net_stats.requests
            << " responses=" << net_stats.responses
            << " shed_inline=" << net_stats.shed_inline
            << " protocol_errors=" << net_stats.protocol_errors
            << " bytes_in=" << net_stats.bytes_in
            << " bytes_out=" << net_stats.bytes_out << "\n";
}

/// Parses "P1,P2,..." into loopback ports for --workers.
std::vector<int> parse_worker_ports(const std::string& list) {
  std::vector<int> ports;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(pos, comma - pos);
    if (!token.empty()) {
      int port = 0;
      try {
        port = std::stoi(token);
      } catch (const std::exception&) {
        usage("bad worker port '" + token + "'");
      }
      if (port <= 0) usage("bad worker port '" + token + "'");
      ports.push_back(port);
    }
    pos = comma + 1;
  }
  return ports;
}

void report_cluster_stats(const serve::cluster::Coordinator& coordinator) {
  std::cerr << "serve: cluster workers=" << coordinator.num_workers()
            << " live=" << coordinator.live_workers()
            << " scatters=" << coordinator.scatters()
            << " migrations=" << coordinator.migrations()
            << " consolidations=" << coordinator.consolidations()
            << " markets=" << coordinator.resident_markets() << "\n";
}

int cmd_serve(int argc, char** argv) {
  std::string input_path;
  int flag_start = 2;
  if (argc > 2 && std::string(argv[2]).rfind("--", 0) != 0) {
    input_path = argv[2];
    flag_start = 3;
  }
  // --worker and --coordinator are value-less mode switches; strip them
  // before the generic "--key value" parse.
  bool worker_mode = false;
  bool coordinator_mode = false;
  std::vector<char*> rest;
  for (int a = flag_start; a < argc; ++a) {
    const std::string key = argv[a];
    if (key == "--worker") {
      worker_mode = true;
    } else if (key == "--coordinator") {
      coordinator_mode = true;
    } else {
      rest.push_back(argv[a]);
    }
  }
  const auto flags =
      parse_flags(static_cast<int>(rest.size()), rest.data(), 0);
  const std::string out_path = flag_string(flags, "out", "");
  // --store DIR overrides SPECMATCH_STORE_DIR: snapshots land in (and cold
  // boots fault from) DIR.
  const std::string store_dir = flag_string(flags, "store", "");
  if (worker_mode && coordinator_mode)
    usage("--worker and --coordinator are mutually exclusive");

  const auto parse_overflow = [&flags](serve::ServeConfig& config) {
    const std::string overflow = flag_string(flags, "overflow", "block");
    if (overflow == "block") {
      config.overflow = serve::ServeConfig::Overflow::kBlock;
    } else if (overflow == "reject") {
      config.overflow = serve::ServeConfig::Overflow::kReject;
    } else {
      usage("unknown --overflow '" + overflow + "' (block|reject)");
    }
  };

  if (coordinator_mode) {
    if (!store_dir.empty())
      usage("--coordinator is storeless (no --store)");
    std::string workers = flag_string(flags, "workers", "");
    if (workers.empty()) {
      const char* env = std::getenv("SPECMATCH_CLUSTER_WORKERS");
      if (env != nullptr) workers = env;
    }
    if (workers.empty()) {
      usage(
          "--coordinator needs --workers P1,P2,... "
          "(or SPECMATCH_CLUSTER_WORKERS)");
    }
    serve::cluster::ClusterConfig config =
        serve::cluster::ClusterConfig::from_env();
    config.worker_ports = parse_worker_ports(workers);
    if (config.worker_ports.empty())
      usage("--workers needs at least one port");
    parse_overflow(config.serve);
    serve::cluster::Coordinator coordinator(std::move(config));

    if (flags.count("listen") != 0) {
      if (!input_path.empty()) usage("--listen takes no request file");
      run_listener(coordinator, flags);
      report_cluster_stats(coordinator);
      return 0;
    }

    std::ifstream file_in;
    if (!input_path.empty() && input_path != "-") {
      file_in.open(input_path);
      if (!file_in.good()) usage("cannot open " + input_path);
    }
    std::istream& in = file_in.is_open() ? file_in : std::cin;
    std::ofstream file_out;
    if (!out_path.empty()) {
      file_out.open(out_path);
      if (!file_out.good()) usage("cannot open " + out_path);
    }
    std::ostream& out = file_out.is_open() ? file_out : std::cout;

    TranscriptWriter transcript(out);
    serve::RequestReader reader(in);
    serve::Request request;
    std::int64_t requests = 0;
    while (reader.next(request)) {
      ++requests;
      coordinator.submit(std::move(request),
                         [&transcript](const serve::Response& response) {
                           transcript.write(response);
                         });
    }
    coordinator.drain();
    out.flush();
    if (!transcript.fully_flushed()) {
      std::cerr << "error: transcript has gaps after drain\n";
      return 1;
    }
    std::cerr << "serve: requests=" << requests << "\n";
    report_cluster_stats(coordinator);
    return 0;
  }

  if (flags.count("listen") != 0) {
    if (!input_path.empty()) usage("--listen takes no request file");
    serve::ServeConfig config = serve::ServeConfig::from_env();
    if (!store_dir.empty()) config.store.dir = store_dir;
    config.worker_mode = worker_mode;
    parse_overflow(config);
    serve::MatchServer server(config);
    run_listener(server, flags);
    std::cerr << "serve: markets=" << server.resident_markets()
              << " bytes=" << server.resident_bytes()
              << " evictions=" << server.evictions()
              << " coalesced=" << server.coalesced()
              << " deduped=" << server.solves_deduped()
              << " shed=" << server.shed()
              << " steady_allocs=" << server.steady_allocs() << "\n";
    if (server.store_enabled())
      std::cerr << "serve: store spilled=" << server.spilled_markets()
                << " spills=" << server.spills()
                << " faults=" << server.faults()
                << " discarded=" << server.discarded()
                << " disk_bytes=" << server.store_disk_bytes() << "\n";
    return 0;
  }

  std::ifstream file_in;
  if (!input_path.empty() && input_path != "-") {
    file_in.open(input_path);
    if (!file_in.good()) usage("cannot open " + input_path);
  }
  std::istream& in = file_in.is_open() ? file_in : std::cin;

  std::ofstream file_out;
  if (!out_path.empty()) {
    file_out.open(out_path);
    if (!file_out.good()) usage("cannot open " + out_path);
  }
  std::ostream& out = file_out.is_open() ? file_out : std::cout;

  if (flags.count("connect") != 0) {
    const int port = flag_int(flags, "connect", 0);
    if (port <= 0) usage("--connect needs a port");
    const int conns = flag_int(flags, "conns", 1);
    if (conns < 1) usage("--conns must be >= 1");
    std::vector<serve::Request> requests;
    serve::RequestReader reader(in);
    serve::Request request;
    while (reader.next(request)) requests.push_back(std::move(request));
    const serve::ReplayResult result =
        serve::replay_over_network(port, requests, conns);
    for (const std::string& line : result.transcript) out << line;
    out.flush();
    std::cerr << "serve: replayed requests=" << requests.size()
              << " conns=" << conns << " bytes_sent=" << result.bytes_sent
              << "\n";
    return 0;
  }

  // Replay mode is lossless: a full queue blocks admission instead of
  // shedding, so a transcript always answers every request.
  serve::ServeConfig config = serve::ServeConfig::from_env();
  config.overflow = serve::ServeConfig::Overflow::kBlock;
  if (!store_dir.empty()) config.store.dir = store_dir;
  config.worker_mode = worker_mode;
  serve::MatchServer server(config);
  TranscriptWriter transcript(out);

  serve::RequestReader reader(in);
  serve::Request request;
  std::int64_t requests = 0;
  while (reader.next(request)) {
    ++requests;
    server.submit(std::move(request),
                  [&transcript](const serve::Response& response) {
                    transcript.write(response);
                  });
  }
  server.drain();
  out.flush();
  if (!transcript.fully_flushed()) {
    std::cerr << "error: transcript has gaps after drain\n";
    return 1;
  }
  std::cerr << "serve: requests=" << requests
            << " markets=" << server.resident_markets()
            << " bytes=" << server.resident_bytes()
            << " evictions=" << server.evictions()
            << " coalesced=" << server.coalesced()
            << " deduped=" << server.solves_deduped()
            << " shed=" << server.shed()
            << " steady_allocs=" << server.steady_allocs() << "\n";
  if (server.store_enabled())
    std::cerr << "serve: store spilled=" << server.spilled_markets()
              << " spills=" << server.spills()
              << " faults=" << server.faults()
              << " discarded=" << server.discarded()
              << " disk_bytes=" << server.store_disk_bytes() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(parse_flags(argc, argv, 2));
    if (command == "info") {
      if (argc < 3) usage("info requires a scenario file");
      return cmd_info(argv[2]);
    }
    if (command == "run") {
      if (argc < 3) usage("run requires a scenario file");
      return cmd_run(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "dist") {
      if (argc < 3) usage("dist requires a scenario file");
      return cmd_dist(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "paper") {
      if (argc < 3) usage("paper requires 'toy' or 'counter'");
      const std::string which = argv[2];
      const auto market = which == "toy"       ? matching::toy_example()
                          : which == "counter" ? matching::counter_example()
                                               : (usage("unknown fixture '" +
                                                        which + "'"),
                                                  matching::toy_example());
      const auto result = matching::run_two_stage(market);
      report(market, result.final_matching(),
             "paper " + which + " example, two-stage matching");
      std::cout << "  welfare per phase: " << result.welfare_stage1 << " -> "
                << result.welfare_phase1 << " -> " << result.welfare_final
                << "\n";
      const auto swaps = matching::run_two_stage_with_swaps(market);
      std::cout << "  with stage-III swaps: " << swaps.welfare_after << " ("
                << swaps.swaps_applied << " swap(s))\n";
      return 0;
    }
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "dot") {
      if (argc < 3) usage("dot requires a scenario file");
      const auto flags = parse_flags(argc, argv, 3);
      const auto market =
          market::build_market(workload::load_scenario_file(argv[2]));
      const auto result = matching::run_two_stage(market);
      const std::string out = flag_string(flags, "out", "");
      if (out.empty()) {
        matching::write_matching_dot(std::cout, market,
                                     result.final_matching());
      } else {
        std::ofstream os(out);
        if (!os.good()) usage("cannot open " + out);
        matching::write_matching_dot(os, market, result.final_matching());
        std::cout << "wrote " << out << "\n";
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command '" + command + "'");
}
