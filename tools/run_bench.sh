#!/usr/bin/env bash
# Perf harness driver.
#
# Default mode: configure + build a Release tree in build-bench/, run the
# micro_core google-benchmark suite plus the core perf trajectory, and
# refresh BENCH_core.json at the repository root. A small fig8 run prints
# the paper's running-time panel for eyeballing.
#
#   tools/run_bench.sh                 # full perf run, writes BENCH_core.json
#   tools/run_bench.sh --scale         # large-market N x M sweep, writes
#                                      # BENCH_scale.json (wall time, rounds,
#                                      # peak RSS, steady-round allocations)
#   tools/run_bench.sh --serve         # closed-loop serving load run, writes
#                                      # BENCH_serve.json (cold/warm latency
#                                      # percentiles, throughput, shed burst)
#   tools/run_bench.sh --serve --net   # networked serving load run over the
#                                      # loopback TCP front-end (closed- and
#                                      # open-loop legs at conns {1,64,512}),
#                                      # writes BENCH_serve_net.json
#   tools/run_bench.sh --cluster       # cluster serving tier run, writes
#                                      # BENCH_cluster.json (single-process
#                                      # baseline vs coordinator + {1,2,4}
#                                      # loopback workers on the identical
#                                      # stream, byte-identity asserted)
#   tools/run_bench.sh --store         # persistence-tier run, writes
#                                      # BENCH_store.json (cold boot from an
#                                      # mmap snapshot vs rebuild at N=20000,
#                                      # memory-capped spill/fault-back
#                                      # stream with zero discards)
#   tools/run_bench.sh --kernels       # SIMD kernel microbench: per-kernel
#                                      # ns/word at words {4,64,1024,16384},
#                                      # scalar vs the dispatched tier, writes
#                                      # BENCH_kernels.json
#   tools/run_bench.sh --smoke BINDIR  # smoke: run every bench binary in
#                                      # BINDIR at SPECMATCH_TRIALS=1 (the
#                                      # bench_smoke ctest)
#   tools/run_bench.sh --compare OLD.json NEW.json [--threshold PCT]
#                                      # regression gate: non-zero exit when
#                                      # NEW regresses wall_ms/p99/throughput
#                                      # (or kernel ns/word rows) past the
#                                      # threshold (default 25%)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

if [[ "${1:-}" == "--compare" ]]; then
  old_json="${2:?usage: run_bench.sh --compare OLD.json NEW.json}"
  new_json="${3:?usage: run_bench.sh --compare OLD.json NEW.json}"
  shift 3
  exec python3 "$repo_root/tools/bench_compare.py" "$old_json" "$new_json" "$@"
fi

if [[ "${1:-}" == "--scale" ]]; then
  build_dir="$repo_root/build-bench"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target large_market
  # Allocation counting on, so every record carries steady_allocs and the
  # zero-allocation guarantee is re-proved on the real sweep, not just the
  # smoke grid. The JSON lands at the repo root for review diffs.
  SPECMATCH_COUNT_ALLOCS=1 \
  SPECMATCH_BENCH_JSON="$repo_root/BENCH_scale.json" \
    "$build_dir/bench/large_market"
  exit 0
fi

if [[ "${1:-}" == "--serve" ]]; then
  build_dir="$repo_root/build-bench"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target serve_load
  if [[ "${2:-}" == "--net" ]]; then
    # Networked leg: the same mutation/solve mix driven through the loopback
    # TCP front-end, closed- and open-loop, conns {1, 64, 512} (override
    # with SPECMATCH_NET_CONNS). Rows land under bench "serve_net" with the
    # connection count in the algorithm field, so --compare keys them apart
    # from the in-process rows. Single-core containers serialize client and
    # server on one CPU — see EXPERIMENTS.md before reading these numbers
    # as network overhead.
    SPECMATCH_METRICS=1 \
    SPECMATCH_BENCH_JSON="$repo_root/BENCH_serve_net.json" \
      "$build_dir/bench/serve_load" --net
    exit 0
  fi
  # Metrics on, so the JSON carries the serve.* instrument snapshot (latency
  # histograms with p50/p90/p99 alongside the client-side exact percentiles).
  SPECMATCH_METRICS=1 \
  SPECMATCH_BENCH_JSON="$repo_root/BENCH_serve.json" \
    "$build_dir/bench/serve_load"
  exit 0
fi

if [[ "${1:-}" == "--cluster" ]]; then
  build_dir="$repo_root/build-bench"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target serve_load
  # Metrics on, so the JSON carries the cluster.* counters and the
  # scatter/gather latency split next to the per-leg wall-clock rows.
  SPECMATCH_METRICS=1 \
  SPECMATCH_BENCH_JSON="$repo_root/BENCH_cluster.json" \
    "$build_dir/bench/serve_load" --cluster
  exit 0
fi

if [[ "${1:-}" == "--store" ]]; then
  build_dir="$repo_root/build-bench"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target serve_load
  # Metrics on, so the JSON carries the serve.store.* counters and the
  # spill/fault-in latency histograms next to the wall-clock legs.
  SPECMATCH_METRICS=1 \
  SPECMATCH_BENCH_JSON="$repo_root/BENCH_store.json" \
    "$build_dir/bench/serve_load" --store
  exit 0
fi

if [[ "${1:-}" == "--kernels" ]]; then
  build_dir="$repo_root/build-bench"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target micro_kernels
  # The bench re-proves scalar/dispatched bit-equivalence before timing, so
  # a broken tier fails here rather than producing fast-but-wrong numbers.
  SPECMATCH_BENCH_JSON="$repo_root/BENCH_kernels.json" \
    "$build_dir/bench/micro_kernels"
  exit 0
fi

if [[ "${1:-}" == "--smoke" ]]; then
  bindir="${2:?usage: run_bench.sh --smoke BINDIR}"
  export SPECMATCH_TRIALS="${SPECMATCH_TRIALS:-1}"
  export SPECMATCH_BENCH_SMOKE="${SPECMATCH_BENCH_SMOKE:-1}"
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  status=0
  for bench in fig6_optimal_vs_matching fig7_stage_welfare fig8_running_time \
               ablation_transition_rules ablation_mwis ablation_rescreen \
               ablation_swap baseline_auction ablation_topology \
               ablation_bundles ablation_manipulation dynamic_market \
               ablation_proposing_side fault_injection ablation_pricing; do
    if [[ ! -x "$bindir/$bench" ]]; then
      echo "bench_smoke: MISSING $bench" >&2
      status=1
      continue
    fi
    echo "bench_smoke: $bench"
    if ! "$bindir/$bench" > "$tmpdir/$bench.log" 2>&1; then
      echo "bench_smoke: FAILED $bench" >&2
      tail -n 30 "$tmpdir/$bench.log" >&2
      status=1
    fi
  done
  # micro_core: one tiny google-benchmark case, then the (smoke-sized) core
  # trajectory, JSON to the temp dir so the checked-in record is untouched.
  echo "bench_smoke: micro_core"
  if ! SPECMATCH_BENCH_JSON="$tmpdir/BENCH_core.json" \
       "$bindir/micro_core" --benchmark_filter='BM_BitsetIntersects/64' \
       --benchmark_min_time=0.01 > "$tmpdir/micro_core.log" 2>&1; then
    echo "bench_smoke: FAILED micro_core" >&2
    tail -n 30 "$tmpdir/micro_core.log" >&2
    status=1
  fi
  grep -q '"bench": "two_stage"' "$tmpdir/BENCH_core.json" || {
    echo "bench_smoke: BENCH_core.json missing two_stage records" >&2
    status=1
  }
  # Scale-bench leg: smoke-sized sweep with the counting allocator on. The
  # records must exist AND report zero steady-round allocations — this is
  # the MatchWorkspace zero-allocation guarantee enforced in CI on top of
  # the unit test (threads default to 1 here, the serial path the guarantee
  # is scoped to).
  echo "bench_smoke: large_market (scale)"
  if ! SPECMATCH_COUNT_ALLOCS=1 SPECMATCH_THREADS=1 \
       SPECMATCH_BENCH_JSON="$tmpdir/BENCH_scale.json" \
       "$bindir/large_market" > "$tmpdir/large_market.log" 2>&1; then
    echo "bench_smoke: FAILED large_market" >&2
    tail -n 30 "$tmpdir/large_market.log" >&2
    status=1
  fi
  grep -q '"bench": "two_stage_scale"' "$tmpdir/BENCH_scale.json" || {
    echo "bench_smoke: BENCH_scale.json missing two_stage_scale records" >&2
    status=1
  }
  if grep -q '"steady_allocs": [1-9-]' "$tmpdir/BENCH_scale.json"; then
    echo "bench_smoke: BENCH_scale.json reports non-zero steady allocations" >&2
    grep '"steady_allocs"' "$tmpdir/BENCH_scale.json" >&2
    status=1
  fi
  grep -q '"steady_allocs": 0' "$tmpdir/BENCH_scale.json" || {
    echo "bench_smoke: BENCH_scale.json missing steady_allocs measurements" >&2
    status=1
  }
  # Component-sharding leg: force every connected component into its own
  # shard (SPECMATCH_COMPONENT_MIN=1, the maximally-sharded path) and
  # require (a) the deterministic `result:` transcript is byte-identical
  # to the default run above — the merge-order guarantee, enforced
  # end-to-end — and (b) the steady state still allocates nothing with
  # sharding at its finest grain.
  echo "bench_smoke: large_market (scale, forced small components)"
  if ! SPECMATCH_COUNT_ALLOCS=1 SPECMATCH_THREADS=1 \
       SPECMATCH_COMPONENT_MIN=1 \
       SPECMATCH_BENCH_JSON="$tmpdir/BENCH_scale_comp.json" \
       "$bindir/large_market" > "$tmpdir/large_market_comp.log" 2>&1; then
    echo "bench_smoke: FAILED large_market (forced small components)" >&2
    tail -n 30 "$tmpdir/large_market_comp.log" >&2
    status=1
  fi
  grep '^result:' "$tmpdir/large_market.log" > "$tmpdir/results_default.txt" || true
  grep '^result:' "$tmpdir/large_market_comp.log" > "$tmpdir/results_comp.txt" || true
  if [[ ! -s "$tmpdir/results_default.txt" ]]; then
    echo "bench_smoke: large_market emitted no result: transcript lines" >&2
    status=1
  elif ! diff -u "$tmpdir/results_default.txt" "$tmpdir/results_comp.txt" >&2; then
    echo "bench_smoke: forced-small-component transcript differs from default" >&2
    status=1
  fi
  if grep -q '"steady_allocs": [1-9-]' "$tmpdir/BENCH_scale_comp.json"; then
    echo "bench_smoke: forced-small-component leg reports non-zero steady allocations" >&2
    grep '"steady_allocs"' "$tmpdir/BENCH_scale_comp.json" >&2
    status=1
  fi
  grep -q '"steady_allocs": 0' "$tmpdir/BENCH_scale_comp.json" || {
    echo "bench_smoke: forced-small-component leg missing steady_allocs measurements" >&2
    status=1
  }
  # CSR leg: force the sparse representation onto the smoke grid (60/200
  # vertices, normally dense) so CI exercises the CSR engine paths
  # end-to-end, with the same zero-steady-allocation bar.
  echo "bench_smoke: large_market (scale, forced CSR)"
  if ! SPECMATCH_COUNT_ALLOCS=1 SPECMATCH_THREADS=1 \
       SPECMATCH_GRAPH_DENSE_MAX=32 \
       SPECMATCH_BENCH_JSON="$tmpdir/BENCH_scale_csr.json" \
       "$bindir/large_market" > "$tmpdir/large_market_csr.log" 2>&1; then
    echo "bench_smoke: FAILED large_market (forced CSR)" >&2
    tail -n 30 "$tmpdir/large_market_csr.log" >&2
    status=1
  fi
  grep -q '"bench": "two_stage_scale"' "$tmpdir/BENCH_scale_csr.json" || {
    echo "bench_smoke: BENCH_scale_csr.json missing two_stage_scale records" >&2
    status=1
  }
  if grep -q '"steady_allocs": [1-9-]' "$tmpdir/BENCH_scale_csr.json"; then
    echo "bench_smoke: forced-CSR leg reports non-zero steady allocations" >&2
    grep '"steady_allocs"' "$tmpdir/BENCH_scale_csr.json" >&2
    status=1
  fi
  # Representation-aware peak-RSS budget: the smoke grid tops out at
  # N=200 x M=8, where either representation fits comfortably in 256 MB
  # (binary + gtest-free runtime + workload). A blown budget means an
  # adjacency (or workspace) regression, caught here before the real
  # N=20000 gate in BENCH_scale.json.
  for scale_json in BENCH_scale.json BENCH_scale_csr.json; do
    over_budget="$(awk -F': ' '/"peak_rss_mb"/ {
        gsub(/[,}].*/, "", $2); if ($2 + 0 > 256) print $2 }' \
        "$tmpdir/$scale_json")"
    if [[ -n "$over_budget" ]]; then
      echo "bench_smoke: $scale_json peak_rss_mb over 256 MB budget:" \
           "$over_budget" >&2
      status=1
    fi
    grep -q '"peak_rss_mb"' "$tmpdir/$scale_json" || {
      echo "bench_smoke: $scale_json missing peak_rss_mb measurements" >&2
      status=1
    }
  done
  # Serving leg: smoke-sized closed-loop load through the MatchServer. The
  # JSON must carry the cold and warm legs plus the shed-burst record.
  echo "bench_smoke: serve_load"
  if ! SPECMATCH_METRICS=1 \
       SPECMATCH_BENCH_JSON="$tmpdir/BENCH_serve.json" \
       "$bindir/serve_load" > "$tmpdir/serve_load.log" 2>&1; then
    echo "bench_smoke: FAILED serve_load" >&2
    tail -n 30 "$tmpdir/serve_load.log" >&2
    status=1
  fi
  for marker in '"algorithm": "cold"' '"algorithm": "warm"' \
                '"bench": "serve_shed"' 'serve.latency_ms'; do
    if ! grep -q "$marker" "$tmpdir/BENCH_serve.json"; then
      echo "bench_smoke: BENCH_serve.json missing $marker" >&2
      status=1
    fi
  done
  # Networked serving leg: the same smoke-sized load through the loopback
  # TCP front-end at conns {1, 8}, closed- and open-loop. The JSON must
  # carry both legs plus the totals row, and the bench itself asserts no
  # request was lost and no protocol error occurred.
  echo "bench_smoke: serve_load --net"
  if ! SPECMATCH_BENCH_JSON="$tmpdir/BENCH_serve_net.json" \
       "$bindir/serve_load" --net > "$tmpdir/serve_load_net.log" 2>&1; then
    echo "bench_smoke: FAILED serve_load --net" >&2
    tail -n 30 "$tmpdir/serve_load_net.log" >&2
    status=1
  fi
  for marker in '"algorithm": "closed_c1"' '"algorithm": "open_c8"' \
                '"algorithm": "totals"'; do
    if ! grep -q "$marker" "$tmpdir/BENCH_serve_net.json"; then
      echo "bench_smoke: BENCH_serve_net.json missing $marker" >&2
      status=1
    fi
  done
  # Cluster leg: smoke-sized coordinator run against in-process loopback
  # workers. The bench itself CHECKs every leg's final `query` is
  # byte-identical to the single-process baseline; the JSON must carry the
  # baseline plus the {1, 2}-worker rows with scatter counters — and it must
  # flow through the bench_compare gate (self-compare: proves cluster rows
  # parse and key).
  echo "bench_smoke: serve_load --cluster"
  if ! SPECMATCH_METRICS=1 \
       SPECMATCH_BENCH_JSON="$tmpdir/BENCH_cluster.json" \
       "$bindir/serve_load" --cluster > "$tmpdir/serve_load_cluster.log" 2>&1; then
    echo "bench_smoke: FAILED serve_load --cluster" >&2
    tail -n 30 "$tmpdir/serve_load_cluster.log" >&2
    status=1
  fi
  for marker in '"algorithm": "single"' '"algorithm": "w1"' \
                '"algorithm": "w2"' 'scatters=' 'cluster.scatters'; do
    if ! grep -q "$marker" "$tmpdir/BENCH_cluster.json"; then
      echo "bench_smoke: BENCH_cluster.json missing $marker" >&2
      status=1
    fi
  done
  if ! "$repo_root/tools/run_bench.sh" --compare \
       "$tmpdir/BENCH_cluster.json" "$tmpdir/BENCH_cluster.json" \
       > "$tmpdir/cluster_compare.log" 2>&1; then
    echo "bench_smoke: BENCH_cluster.json did not pass the bench_compare gate" >&2
    tail -n 20 "$tmpdir/cluster_compare.log" >&2
    status=1
  fi
  # Persistence leg: smoke-sized store run. The bench itself CHECKs the
  # cold-booted market answers byte-identically and that the capped stream
  # discards nothing; the JSON must carry both cold-start legs, the capped
  # stream, and the serve.store.* counters — and it must flow through the
  # bench_compare gate (self-compare: proves store rows parse and key).
  echo "bench_smoke: serve_load --store"
  if ! SPECMATCH_METRICS=1 \
       SPECMATCH_BENCH_JSON="$tmpdir/BENCH_store.json" \
       "$bindir/serve_load" --store > "$tmpdir/serve_load_store.log" 2>&1; then
    echo "bench_smoke: FAILED serve_load --store" >&2
    tail -n 30 "$tmpdir/serve_load_store.log" >&2
    status=1
  fi
  for marker in '"algorithm": "rebuild"' '"algorithm": "snapshot_load"' \
                '"bench": "store_spill_stream"' 'discarded=0' \
                'serve.store.spills' 'serve.store.fault_ms'; do
    if ! grep -q "$marker" "$tmpdir/BENCH_store.json"; then
      echo "bench_smoke: BENCH_store.json missing $marker" >&2
      status=1
    fi
  done
  if ! "$repo_root/tools/run_bench.sh" --compare \
       "$tmpdir/BENCH_store.json" "$tmpdir/BENCH_store.json" \
       > "$tmpdir/store_compare.log" 2>&1; then
    echo "bench_smoke: BENCH_store.json did not pass the bench_compare gate" >&2
    tail -n 20 "$tmpdir/store_compare.log" >&2
    status=1
  fi
  # SIMD kernel leg: smoke-sized micro_kernels run. The bench itself CHECKs
  # every dispatch tier against the scalar reference before timing, and the
  # JSON must carry the kernels-v1 schema with both scalar and dispatched
  # rows (on x86 the dispatched tier differs from scalar).
  echo "bench_smoke: micro_kernels"
  if ! SPECMATCH_BENCH_JSON="$tmpdir/BENCH_kernels.json" \
       "$bindir/micro_kernels" > "$tmpdir/micro_kernels.log" 2>&1; then
    echo "bench_smoke: FAILED micro_kernels" >&2
    tail -n 30 "$tmpdir/micro_kernels.log" >&2
    status=1
  fi
  for marker in '"schema": "specmatch-kernels-v1"' \
                '"kernel": "and_popcount"' '"dispatch": "scalar"'; do
    if ! grep -q "$marker" "$tmpdir/BENCH_kernels.json"; then
      echo "bench_smoke: BENCH_kernels.json missing $marker" >&2
      status=1
    fi
  done
  # Metrics leg: with SPECMATCH_METRICS on, the bench JSON must carry the
  # algorithmic-counters section with non-zero Stage I, MWIS, and dist
  # counts (the observability acceptance bar; see docs/OBSERVABILITY.md).
  echo "bench_smoke: micro_core (metrics)"
  if ! SPECMATCH_METRICS=1 SPECMATCH_BENCH_JSON="$tmpdir/BENCH_metrics.json" \
       "$bindir/micro_core" --benchmark_filter='BM_BitsetIntersects/64' \
       --benchmark_min_time=0.01 > "$tmpdir/micro_core_metrics.log" 2>&1; then
    echo "bench_smoke: FAILED micro_core (metrics)" >&2
    tail -n 30 "$tmpdir/micro_core_metrics.log" >&2
    status=1
  fi
  for counter in stage1.rounds stage1.proposals mwis.calls dist.messages; do
    if ! grep -Eq "\"$counter\": [1-9][0-9]*" "$tmpdir/BENCH_metrics.json"; then
      echo "bench_smoke: BENCH_metrics.json missing non-zero $counter" >&2
      status=1
    fi
  done
  # SIMD observability: the dispatch gauge and at least one per-kernel call
  # counter must surface in the same dump (docs/OBSERVABILITY.md "Kernel
  # dispatch"). The tier gauge exists on every platform (scalar included).
  if ! grep -q '"simd.dispatch.tier"' "$tmpdir/BENCH_metrics.json"; then
    echo "bench_smoke: BENCH_metrics.json missing simd.dispatch.tier gauge" >&2
    status=1
  fi
  if ! grep -Eq '"simd\.(and_popcount|popcount)\.calls": [1-9][0-9]*' \
       "$tmpdir/BENCH_metrics.json"; then
    echo "bench_smoke: BENCH_metrics.json missing non-zero simd.*.calls" >&2
    status=1
  fi
  exit "$status"
fi

build_dir="$repo_root/build-bench"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" --target micro_core fig8_running_time

# Full micro suite + the core trajectory; the JSON lands at the repo root so
# perf changes show up in review diffs.
SPECMATCH_BENCH_JSON="$repo_root/BENCH_core.json" \
  "$build_dir/bench/micro_core" "$@"
echo
echo "== fig8 running-time panel (SPECMATCH_TRIALS=${SPECMATCH_TRIALS:-5}) =="
SPECMATCH_TRIALS="${SPECMATCH_TRIALS:-5}" "$build_dir/bench/fig8_running_time"
