#!/usr/bin/env python3
"""Compare two specmatch bench JSON files and fail on perf regressions.

Usage:
    bench_compare.py OLD.json NEW.json [--threshold PCT] [--min-ms MS]
                                       [--min-ns NS]

Two record shapes are understood and may coexist in one file:

  * engine rows (specmatch-bench-v2), keyed by (bench, M, N, algorithm,
    threads), comparing:
      - wall_ms            lower is better (skipped when the old value is 0)
      - p99_ms  (note)     lower is better
      - p50_ms  (note)     lower is better
      - rps     (note)     higher is better
  * kernel rows (specmatch-kernels-v1, written by bench/micro_kernels),
    keyed by (kernel, words, dispatch), comparing:
      - ns_per_word        lower is better
      - ns_per_call        lower is better

"note" metrics are parsed from the free-form `key=value` tokens the bench
binaries embed (e.g. "p50_ms=0.015 p99_ms=2.5 rps=4242.16 solves=48").

A metric regresses when it moves past --threshold percent (default 25) in
the bad direction AND by more than an absolute floor — --min-ms (default
0.25 ms) for millisecond metrics, --min-ns (default 2 ns) for the
nanosecond kernel metrics. The floors keep sub-millisecond smoke points
and single-digit-ns kernel calls from tripping the gate on scheduler
noise.

Keys present in only one file are reported as coverage drift but are not
fatal: bench grids legitimately grow and shrink across PRs.

Exit status: 0 = no regression, 1 = regression detected, 2 = usage or
parse error.
"""

import argparse
import json
import re
import sys

# metric name -> direction; +1 means higher-is-better, -1 lower-is-better.
NOTE_METRICS = {"p50_ms": -1, "p99_ms": -1, "rps": +1}
NOTE_TOKEN = re.compile(r"\b([A-Za-z0-9_]+)=(-?[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?)\b")


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")
    records = doc.get("records")
    if not isinstance(records, list):
        sys.exit(f"bench_compare: {path} has no 'records' array")
    table = {}
    for rec in records:
        if "kernel" in rec:
            # micro_kernels row (specmatch-kernels-v1).
            key = ("kernel", rec.get("kernel"), rec.get("words"),
                   rec.get("dispatch"))
        else:
            key = (
                rec.get("bench"),
                rec.get("M"),
                rec.get("N"),
                rec.get("algorithm"),
                rec.get("threads"),
            )
        # Duplicate keys (e.g. repeated representation legs) keep the first
        # occurrence so OLD and NEW pair up the same way.
        table.setdefault(key, rec)
    return table


def label_of(key):
    if key[0] == "kernel":
        return "kernel {}[words={} {}]".format(*key[1:])
    return "{}[M={} N={} {} t={}]".format(*key)


def metrics_of(rec):
    out = {}
    if "kernel" in rec:
        for name in ("ns_per_word", "ns_per_call"):
            value = rec.get(name)
            if isinstance(value, (int, float)) and value > 0:
                out[name] = (float(value), -1)
        return out
    wall = rec.get("wall_ms")
    if isinstance(wall, (int, float)) and wall > 0:
        out["wall_ms"] = (float(wall), -1)
    for name, value in NOTE_TOKEN.findall(rec.get("note", "") or ""):
        if name in NOTE_METRICS:
            out[name] = (float(value), NOTE_METRICS[name])
    return out


def main(argv):
    parser = argparse.ArgumentParser(prog="bench_compare.py")
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="regression threshold in percent (default 25)")
    parser.add_argument("--min-ms", type=float, default=0.25,
                        help="absolute slack for *_ms metrics (default 0.25)")
    parser.add_argument("--min-ns", type=float, default=2.0,
                        help="absolute slack for ns_* kernel metrics "
                             "(default 2)")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    old_table = load_records(args.old)
    new_table = load_records(args.new)

    regressions = []
    improvements = 0
    compared = 0
    for key in sorted(old_table, key=str):
        if key not in new_table:
            continue
        old_metrics = metrics_of(old_table[key])
        new_metrics = metrics_of(new_table[key])
        label = label_of(key)
        for name, (old_val, direction) in sorted(old_metrics.items()):
            if name not in new_metrics:
                continue
            new_val = new_metrics[name][0]
            compared += 1
            # Signed percentage move in the bad direction.
            if old_val == 0:
                continue
            delta_pct = (new_val - old_val) / old_val * 100.0
            bad_pct = -delta_pct if direction > 0 else delta_pct
            if bad_pct <= args.threshold:
                if bad_pct < 0:
                    improvements += 1
                continue
            if name.endswith("_ms") and abs(new_val - old_val) < args.min_ms:
                continue
            if name.startswith("ns_") and abs(new_val - old_val) < args.min_ns:
                continue
            regressions.append(
                f"  {label} {name}: {old_val:g} -> {new_val:g} "
                f"({bad_pct:+.1f}% worse, threshold {args.threshold:g}%)")

    only_old = sorted(set(old_table) - set(new_table), key=str)
    only_new = sorted(set(new_table) - set(old_table), key=str)
    for key in only_old:
        print("bench_compare: note: dropped from NEW: "
              "{}[M={} N={} {} t={}]".format(*key))
    for key in only_new:
        print("bench_compare: note: new in NEW: "
              "{}[M={} N={} {} t={}]".format(*key))

    if compared == 0:
        sys.exit("bench_compare: no comparable metrics between "
                 f"{args.old} and {args.new}")

    if regressions:
        print(f"bench_compare: FAIL — {len(regressions)} regression(s) "
              f"over {args.threshold:g}% across {compared} metric(s):")
        for line in regressions:
            print(line)
        return 1
    print(f"bench_compare: OK — {compared} metric(s) within "
          f"{args.threshold:g}% ({improvements} improved)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
