#!/usr/bin/env bash
# serve_smoke: replays tools/serve_smoke.req through `specmatch_cli serve`
# and pins the serving determinism contract (docs/SERVING.md):
#
#   * transcripts are byte-identical across repeated runs AND across
#     SPECMATCH_THREADS / SPECMATCH_SERVE_THREADS 1 vs 4;
#   * the serial steady state allocates nothing (SPECMATCH_COUNT_ALLOCS=1,
#     asserted via the CLI's stderr summary);
#   * warm fallback, semantic errors, and solve responses all appear.
#
# Usage: serve_smoke.sh <path-to-specmatch_cli> <tools-dir>
set -euo pipefail

CLI="$1"
HERE="$2"
REQ="$HERE/serve_smoke.req"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run() { # <threads> <out> <err>
  SPECMATCH_THREADS="$1" SPECMATCH_SERVE_THREADS="$1" \
    SPECMATCH_COUNT_ALLOCS=1 \
    "$CLI" serve "$REQ" --out "$2" 2>"$3"
}

run 1 "$TMP/t1a.out" "$TMP/t1a.err"
run 1 "$TMP/t1b.out" "$TMP/t1b.err"
run 4 "$TMP/t4a.out" "$TMP/t4a.err"
run 4 "$TMP/t4b.out" "$TMP/t4b.err"

for variant in t1b t4a t4b; do
  if ! cmp -s "$TMP/t1a.out" "$TMP/$variant.out"; then
    echo "FAIL: transcript $variant diverged from t1a:" >&2
    diff "$TMP/t1a.out" "$TMP/$variant.out" >&2 || true
    exit 1
  fi
done

fail() { echo "FAIL: $1" >&2; cat "$TMP/t1a.out" >&2; exit 1; }
grep -q '^ok solve a cold'  "$TMP/t1a.out" || fail "missing cold solve response"
grep -q '^ok solve a warm'  "$TMP/t1a.out" || fail "missing warm solve response"
grep -q 'fallback=cold'     "$TMP/t1a.out" || fail "missing warm fallback marker"
grep -q '^err '             "$TMP/t1a.out" || fail "missing semantic error response"

# The serial replay must be allocation-free in steady state.
grep -q 'steady_allocs=0' "$TMP/t1a.err" || {
  echo "FAIL: nonzero steady-state allocations:" >&2
  cat "$TMP/t1a.err" >&2
  exit 1
}

echo "serve_smoke OK: $(wc -l < "$TMP/t1a.out") responses, transcripts identical at threads {1,4}"
