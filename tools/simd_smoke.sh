#!/usr/bin/env bash
# simd_smoke: end-to-end SIMD tier-equivalence gate (the simd_equivalence
# ctest). For every dispatch tier this CPU supports (probed via
# micro_kernels --probe) at SPECMATCH_THREADS 1 and 4:
#
#   * the large_market smoke sweep's deterministic `result:` transcript must
#     be byte-identical to the scalar-forced run — matchings, rounds,
#     welfare, and component counts cannot depend on SPECMATCH_SIMD;
#   * the `specmatch_cli serve` transcript over tools/serve_smoke.req must
#     be byte-identical to the scalar-forced transcript.
#
# Usage: simd_smoke.sh <path-to-specmatch_cli> <tools-dir> <bench-bindir>
set -euo pipefail

CLI="$1"
HERE="$2"
BENCHDIR="$3"
REQ="$HERE/serve_smoke.req"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

export SPECMATCH_TRIALS=1
export SPECMATCH_BENCH_SMOKE=1

tiers="$("$BENCHDIR/micro_kernels" --probe)"
echo "simd_smoke: supported tiers: $(echo "$tiers" | tr '\n' ' ')"

# Scalar baselines, one per thread count.
for t in 1 4; do
  SPECMATCH_SIMD=scalar SPECMATCH_THREADS="$t" \
    SPECMATCH_BENCH_JSON="$TMP/scale_scalar_t$t.json" \
    "$BENCHDIR/large_market" > "$TMP/lm_scalar_t$t.log" 2>&1
  grep '^result:' "$TMP/lm_scalar_t$t.log" > "$TMP/results_scalar_t$t.txt"
  [[ -s "$TMP/results_scalar_t$t.txt" ]] || {
    echo "simd_smoke: scalar large_market emitted no result: lines (t=$t)" >&2
    exit 1
  }
  SPECMATCH_SIMD=scalar SPECMATCH_THREADS="$t" SPECMATCH_SERVE_THREADS="$t" \
    "$CLI" serve "$REQ" --out "$TMP/serve_scalar_t$t.out" 2>/dev/null
done

status=0
for tier in $tiers; do
  [[ "$tier" == "scalar" ]] && continue
  for t in 1 4; do
    SPECMATCH_SIMD="$tier" SPECMATCH_THREADS="$t" \
      SPECMATCH_BENCH_JSON="$TMP/scale_${tier}_t$t.json" \
      "$BENCHDIR/large_market" > "$TMP/lm_${tier}_t$t.log" 2>&1
    grep '^result:' "$TMP/lm_${tier}_t$t.log" > "$TMP/results_${tier}_t$t.txt"
    if ! diff -u "$TMP/results_scalar_t$t.txt" \
                 "$TMP/results_${tier}_t$t.txt" >&2; then
      echo "simd_smoke: large_market result: transcript differs" \
           "(tier=$tier threads=$t)" >&2
      status=1
    fi
    SPECMATCH_SIMD="$tier" SPECMATCH_THREADS="$t" \
      SPECMATCH_SERVE_THREADS="$t" \
      "$CLI" serve "$REQ" --out "$TMP/serve_${tier}_t$t.out" 2>/dev/null
    if ! cmp -s "$TMP/serve_scalar_t$t.out" "$TMP/serve_${tier}_t$t.out"; then
      echo "simd_smoke: serve transcript differs (tier=$tier threads=$t)" >&2
      diff "$TMP/serve_scalar_t$t.out" "$TMP/serve_${tier}_t$t.out" >&2 || true
      status=1
    fi
  done
done

[[ "$status" -eq 0 ]] &&
  echo "simd_smoke OK: result: transcripts and serve transcripts identical" \
       "across tiers {$(echo "$tiers" | tr '\n' ' ')} x threads {1,4}"
exit "$status"
