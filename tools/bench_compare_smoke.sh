#!/usr/bin/env bash
# The bench_compare ctest: exercise run_bench.sh --compare against the
# canned fixture pair. The clean pair must pass (exit 0) and the pair with
# a planted warm-p99/throughput regression must fail non-zero — proving
# the gate actually trips before anyone relies on it in CI.
set -euo pipefail

tools_dir="${1:?usage: bench_compare_smoke.sh TOOLS_DIR}"
fixtures="$tools_dir/fixtures"
status=0

echo "bench_compare_smoke: clean pair (must pass)"
if ! "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_old.json" "$fixtures/bench_compare_ok.json"; then
  echo "bench_compare_smoke: FAILED — clean pair reported a regression" >&2
  status=1
fi

echo "bench_compare_smoke: regressed pair (must fail)"
if "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_old.json" \
     "$fixtures/bench_compare_regressed.json"; then
  echo "bench_compare_smoke: FAILED — planted regression was not detected" >&2
  status=1
fi

# The planted regression is scoped to the warm serve leg; a tighter
# threshold must also flag it, and a huge threshold must let it pass —
# sanity that --threshold is actually honored.
echo "bench_compare_smoke: regressed pair at --threshold 500 (must pass)"
if ! "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_old.json" \
     "$fixtures/bench_compare_regressed.json" --threshold 500; then
  echo "bench_compare_smoke: FAILED — threshold override not honored" >&2
  status=1
fi

exit "$status"
