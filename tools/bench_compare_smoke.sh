#!/usr/bin/env bash
# The bench_compare ctest: exercise run_bench.sh --compare against the
# canned fixture pair. The clean pair must pass (exit 0) and the pair with
# a planted warm-p99/throughput regression must fail non-zero — proving
# the gate actually trips before anyone relies on it in CI.
set -euo pipefail

tools_dir="${1:?usage: bench_compare_smoke.sh TOOLS_DIR}"
fixtures="$tools_dir/fixtures"
status=0

echo "bench_compare_smoke: clean pair (must pass)"
if ! "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_old.json" "$fixtures/bench_compare_ok.json"; then
  echo "bench_compare_smoke: FAILED — clean pair reported a regression" >&2
  status=1
fi

echo "bench_compare_smoke: regressed pair (must fail)"
if "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_old.json" \
     "$fixtures/bench_compare_regressed.json"; then
  echo "bench_compare_smoke: FAILED — planted regression was not detected" >&2
  status=1
fi

# The planted regressions (warm serve leg, store snapshot_load wall time)
# all stay under 500%; a huge threshold must let the pair pass — sanity
# that --threshold is actually honored.
echo "bench_compare_smoke: regressed pair at --threshold 500 (must pass)"
if ! "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_old.json" \
     "$fixtures/bench_compare_regressed.json" --threshold 500; then
  echo "bench_compare_smoke: FAILED — threshold override not honored" >&2
  status=1
fi

# Kernel-schema pair (specmatch-kernels-v1, bench/micro_kernels rows keyed
# by kernel/words/dispatch). Clean pair passes; the regressed pair plants a
# 4x ns_per_call jump on and_popcount@1024/avx2 which must trip the gate.
# Its ns_per_word twin moves by the same ratio but only ~0.35 ns absolute,
# which the --min-ns floor (default 2 ns) must swallow — so exactly one
# regression line is expected.
echo "bench_compare_smoke: kernel clean pair (must pass)"
if ! "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_kernels_old.json" \
     "$fixtures/bench_compare_kernels_ok.json"; then
  echo "bench_compare_smoke: FAILED — clean kernel pair reported a regression" >&2
  status=1
fi

echo "bench_compare_smoke: kernel regressed pair (must fail)"
if "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_kernels_old.json" \
     "$fixtures/bench_compare_kernels_regressed.json"; then
  echo "bench_compare_smoke: FAILED — planted kernel regression not detected" >&2
  status=1
fi

# With the absolute floor raised past the planted 360 ns jump the same pair
# must pass — sanity that --min-ns is actually honored.
echo "bench_compare_smoke: kernel regressed pair at --min-ns 1000 (must pass)"
if ! "$tools_dir/run_bench.sh" --compare \
     "$fixtures/bench_compare_kernels_old.json" \
     "$fixtures/bench_compare_kernels_regressed.json" --min-ns 1000; then
  echo "bench_compare_smoke: FAILED — --min-ns override not honored" >&2
  status=1
fi

exit "$status"
