#!/usr/bin/env bash
# serve_net_smoke: pins the networked serving contract (docs/PROTOCOL.md).
#
# Replays tools/serve_smoke.req against `specmatch_cli serve --listen` over
# 1 and 8 concurrent connections at drain-lane counts {1, 4}, and requires
# every TCP transcript to be byte-identical to the in-process
# `specmatch_cli serve FILE` transcript — the tentpole bit-for-bit
# guarantee. Also checks that SIGTERM drains gracefully: the server must
# exit 0 having answered everything (requests == responses in its final
# stats line), never dropping an accepted request.
#
# Usage: serve_net_smoke.sh <path-to-specmatch_cli> <tools-dir>
set -euo pipefail

CLI="$1"
HERE="$2"
REQ="$HERE/serve_smoke.req"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"; [[ -n "${SRV_PID:-}" ]] && kill "$SRV_PID" 2>/dev/null || true' EXIT

# The reference transcript: the in-process replay path.
"$CLI" serve "$REQ" --out "$TMP/ref.out" 2>/dev/null

wait_for_port() { # <port-file>
  for _ in $(seq 1 200); do
    [[ -s "$1" ]] && return 0
    sleep 0.05
  done
  echo "FAIL: server never wrote its port file" >&2
  exit 1
}

for threads in 1 4; do
  for conns in 1 8; do
    tag="t${threads}_c${conns}"
    rm -f "$TMP/port"
    SPECMATCH_THREADS="$threads" SPECMATCH_SERVE_THREADS="$threads" \
      "$CLI" serve --listen 0 --port-file "$TMP/port" 2>"$TMP/$tag.err" &
    SRV_PID=$!
    wait_for_port "$TMP/port"
    port="$(cat "$TMP/port")"

    "$CLI" serve "$REQ" --connect "$port" --conns "$conns" \
      --out "$TMP/$tag.out" 2>"$TMP/$tag.client.err"

    kill -TERM "$SRV_PID"
    if ! wait "$SRV_PID"; then
      echo "FAIL: $tag server exited nonzero after SIGTERM:" >&2
      cat "$TMP/$tag.err" >&2
      exit 1
    fi
    SRV_PID=""

    if ! cmp -s "$TMP/ref.out" "$TMP/$tag.out"; then
      echo "FAIL: $tag TCP transcript diverged from the in-process path:" >&2
      diff "$TMP/ref.out" "$TMP/$tag.out" >&2 || true
      exit 1
    fi

    # Graceful drain: every parsed request was answered.
    reqs="$(sed -nE 's/.* requests=([0-9]+) .*/\1/p' "$TMP/$tag.err" | head -1)"
    resps="$(sed -nE 's/.* responses=([0-9]+) .*/\1/p' "$TMP/$tag.err" | head -1)"
    if [[ -z "$reqs" || "$reqs" != "$resps" ]]; then
      echo "FAIL: $tag drain lost requests (requests=$reqs responses=$resps):" >&2
      cat "$TMP/$tag.err" >&2
      exit 1
    fi
  done
done

echo "serve_net_smoke OK: transcripts identical to in-process at threads {1,4} x conns {1,8}"
