#!/usr/bin/env bash
# store_smoke: end-to-end contract of the persistent market store
# (docs/PERSISTENCE.md):
#
#   * snapshot + cold boot: a server booted cold against the snapshot
#     directory (no create requests) answers a request suffix byte-identically
#     to the continuously running server that wrote the snapshots, at
#     SPECMATCH_THREADS / SPECMATCH_SERVE_THREADS 1 vs 4;
#   * memory-capped spill/fault-back: under SPECMATCH_SERVE_MEM_MB=1 the
#     same workload answers byte-identically to the uncapped run, with
#     spills > 0 and discarded=0 (nothing is ever lost while the store is on).
#
# Usage: store_smoke.sh <path-to-specmatch_cli> <tools-dir>
set -euo pipefail

CLI="$1"
HERE="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# --- build the workload: 8 markets big enough that they cannot all fit in a
# 1 MB budget, each created, solved, and snapshotted; then a suffix of
# queries and warm solves that never creates anything. `stats` is absent on
# purpose: its registry-wide tail (faults, disk bytes) legitimately differs
# between a warm server and a cold-booted one.
PHASE1="$TMP/phase1.req"
PHASE2="$TMP/phase2.req"
: > "$PHASE1"
for k in 0 1 2 3 4 5 6 7; do
  "$CLI" generate --sellers 8 --buyers 300 --seed $((100 + k)) \
    --out "$TMP/scn$k.txt" > /dev/null
  echo "create m$k" >> "$PHASE1"
  cat "$TMP/scn$k.txt" >> "$PHASE1"
  echo "solve m$k cold" >> "$PHASE1"
  echo "price m$k $k 0 2.5" >> "$PHASE1"
  echo "solve m$k warm" >> "$PHASE1"
  echo "snapshot m$k" >> "$PHASE1"
done
: > "$PHASE2"
for k in 0 1 2 3 4 5 6 7; do
  echo "query m$k" >> "$PHASE2"
  echo "solve m$k warm" >> "$PHASE2"
  echo "restore m$k" >> "$PHASE2"
done
PHASE2_LINES=$(grep -c . "$PHASE2")

run() { # <threads> <mem-mb> <store-dir> <req> <out> <err>
  SPECMATCH_THREADS="$1" SPECMATCH_SERVE_THREADS="$1" \
    SPECMATCH_SERVE_MEM_MB="$2" \
    "$CLI" serve "$4" --store "$3" --out "$5" 2>"$6"
}

# --- leg 1: snapshot + cold boot -------------------------------------------
# Continuous run: phase 1 and phase 2 in one server lifetime.
cat "$PHASE1" "$PHASE2" > "$TMP/both.req"
run 1 4096 "$TMP/warm_store" "$TMP/both.req" "$TMP/warm.out" "$TMP/warm.err"
tail -n "$PHASE2_LINES" "$TMP/warm.out" > "$TMP/warm_tail.out"

# Cold boots: fresh processes against the snapshot dir phase 1 populated.
# `restore m*` must answer faulted=0 on the warm server (still resident) —
# so phase 2's transcript can only match if the cold server faults every
# market in via the *first* touch (the query), not the restore.
for threads in 1 4; do
  run "$threads" 4096 "$TMP/warm_store" "$PHASE2" \
    "$TMP/cold_t$threads.out" "$TMP/cold_t$threads.err"
  if ! cmp -s "$TMP/warm_tail.out" "$TMP/cold_t$threads.out"; then
    echo "FAIL: cold boot transcript (threads=$threads) diverged:" >&2
    diff "$TMP/warm_tail.out" "$TMP/cold_t$threads.out" >&2 || true
    exit 1
  fi
done

# --- leg 2: memory-capped spill / fault-back --------------------------------
# The capped run evicts (spilling) and faults back throughout; market content
# — solves, queries, prices, snapshot byte counts — must not change. Only the
# evicted=/faulted= bookkeeping fields may differ, so they are stripped
# before the compare.
run 1 4096 "$TMP/uncapped_store" "$TMP/both.req" \
  "$TMP/uncapped.out" "$TMP/uncapped.err"
run 1 1 "$TMP/capped_store" "$TMP/both.req" \
  "$TMP/capped.out" "$TMP/capped.err"
strip_bookkeeping() { sed -E 's/ (evicted|faulted)=[0-9]+//g' "$1"; }
if ! cmp -s <(strip_bookkeeping "$TMP/uncapped.out") \
            <(strip_bookkeeping "$TMP/capped.out"); then
  echo "FAIL: memory-capped transcript diverged from uncapped:" >&2
  diff <(strip_bookkeeping "$TMP/uncapped.out") \
       <(strip_bookkeeping "$TMP/capped.out") >&2 || true
  exit 1
fi

fail() { echo "FAIL: $1" >&2; cat "$TMP/capped.err" >&2; exit 1; }
grep -q 'discarded=0' "$TMP/capped.err" || fail "capped run discarded markets"
grep -Eq 'spills=[1-9]' "$TMP/capped.err" || fail "capped run never spilled"
grep -Eq 'faults=[1-9]' "$TMP/capped.err" || fail "capped run never faulted"
if grep -q '^err ' "$TMP/capped.out"; then fail "unexpected err response"; fi

echo "store_smoke OK: cold boot identical at threads {1,4};" \
  "capped run spilled/faulted with zero discards"
