#!/usr/bin/env bash
# Documentation consistency check (registered as the docs_check ctest).
#
# 1. Every intra-repo markdown link in the checked docs must resolve to an
#    existing file (anchors and external URLs are skipped).
# 2. Every SPECMATCH_* token mentioned in the checked docs must be a knob
#    registered in src/common/config.* (known_env_knobs), so docs and code
#    cannot drift apart. The checking macros (SPECMATCH_CHECK etc.) are code
#    identifiers, not env knobs, and are whitelisted.
# 3. Every wire-protocol verb the server implements (the request_keyword
#    switch in src/serve/protocol.cpp) must be documented in
#    docs/PROTOCOL.md, so the protocol spec cannot silently fall behind the
#    implementation.
# 4. Every `stats` response tail key (the kStatsTailKeys registry between
#    the stats-tail-keys markers in src/serve/protocol.cpp) must be
#    documented in docs/SERVING.md.
#
# Usage: tools/docs_check.sh [repo_root]
set -uo pipefail

repo_root="${1:-$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)}"
cd "$repo_root"

docs=(README.md EXPERIMENTS.md DESIGN.md docs/*.md)
config_files=(src/common/config.hpp src/common/config.cpp)
macro_whitelist='SPECMATCH_CHECK|SPECMATCH_CHECK_MSG|SPECMATCH_DCHECK'

status=0

# ---- 1. Intra-repo links resolve -------------------------------------------
for doc in "${docs[@]}"; do
  [[ -f "$doc" ]] || { echo "docs_check: MISSING doc $doc" >&2; status=1; continue; }
  doc_dir="$(dirname "$doc")"
  # Inline markdown links: [text](target). One per line via grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"         # drop any #anchor
    [[ -n "$path" ]] || continue
    # Relative to the doc's own directory, like a markdown renderer.
    if [[ ! -e "$doc_dir/$path" && ! -e "$path" ]]; then
      echo "docs_check: BROKEN LINK in $doc -> $target" >&2
      status=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\((.*)\)$/\1/')
done

# ---- 2. SPECMATCH_* tokens in docs are registered knobs ---------------------
known="$(grep -ohE 'SPECMATCH_[A-Z_]+' "${config_files[@]}" | sort -u)"
for doc in "${docs[@]}"; do
  [[ -f "$doc" ]] || continue
  while IFS= read -r token; do
    [[ "$token" =~ ^($macro_whitelist)$ ]] && continue
    if ! grep -qx "$token" <<< "$known"; then
      echo "docs_check: $doc mentions $token, not registered in src/common/config.*" >&2
      status=1
    fi
  done < <(grep -ohE 'SPECMATCH_[A-Z_]+' "$doc" | sort -u)
done

# ---- 3. Every protocol verb appears in docs/PROTOCOL.md ---------------------
protocol_src=src/serve/protocol.cpp
protocol_doc=docs/PROTOCOL.md
if [[ ! -f "$protocol_doc" ]]; then
  echo "docs_check: MISSING $protocol_doc" >&2
  status=1
else
  # The verbs are the string literals returned by request_keyword().
  verbs="$(sed -n '/request_keyword/,/^}/p' "$protocol_src" \
           | grep -oE 'return "[a-z]+"' | grep -oE '"[a-z]+"' | tr -d '"' \
           | sort -u)"
  if [[ -z "$verbs" ]]; then
    echo "docs_check: no verbs extracted from $protocol_src (request_keyword moved?)" >&2
    status=1
  fi
  for verb in $verbs; do
    if ! grep -qE "(^|[\` ])$verb([\` ]|$)" "$protocol_doc"; then
      echo "docs_check: verb '$verb' ($protocol_src) undocumented in $protocol_doc" >&2
      status=1
    fi
  done
fi

# ---- 4. Every stats tail key appears in docs/SERVING.md ---------------------
serving_doc=docs/SERVING.md
if [[ ! -f "$serving_doc" ]]; then
  echo "docs_check: MISSING $serving_doc" >&2
  status=1
else
  keys="$(sed -n '/stats-tail-keys-begin/,/stats-tail-keys-end/p' \
              "$protocol_src" \
          | grep -oE '"[a-z_]+"' | tr -d '"')"
  if [[ -z "$keys" ]]; then
    echo "docs_check: no stats tail keys extracted from $protocol_src (markers moved?)" >&2
    status=1
  fi
  for key in $keys; do
    if ! grep -qE "(^|[\`| ])$key(=|\`)" "$serving_doc"; then
      echo "docs_check: stats key '$key' ($protocol_src) undocumented in $serving_doc" >&2
      status=1
    fi
  done
fi

if [[ "$status" -eq 0 ]]; then
  echo "docs_check: OK (${#docs[@]} docs checked)"
fi
exit "$status"
